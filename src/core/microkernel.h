// nDirect micro-kernels (Section 5, Algorithm 3).
//
// The *main micro-kernel* computes a Vw x Vk output tile: Vw consecutive
// output columns by Vk consecutive output channels, reduced over a
// Tc-channel slice of the kernel window. Input scalars come from a
// linear pack buffer (L1-resident), filter vectors from the transformed
// Vk-contiguous filter tile (L2-resident), and each input scalar is
// broadcast-FMAed against the filter vector — the outer-product update
// of Figure 2 that maximizes FAI.
//
// The *packing micro-kernel* gathers the Tc x R x packw input window
// (packw = (Vw-1)*str + S) into the linear buffer, inserting zeros where
// the window hangs over the padded border.
//
// The *fused* variant performs the packing stores interleaved with the
// first kv iteration's FMAs (Section 5.3): each gathered row is stored
// to the buffer and immediately consumed, so the packing latency hides
// behind the compute and later kv iterations hit the L1-resident buffer.
//
// Kernel instantiations come from a compile-time *policy registry*
// rather than hand-enumerated macro lists: a policy is the tuple
// (Vw, Vk, S, stride, tail-mode), a single generator template
// (core/microkernel_generator.h) expands the fully-unrolled Algorithm 3
// body per policy, and a constexpr table instantiates every block that
// satisfies the Eq. 3 register budget for S in {1, 3, 5, 7} and stride
// in {1, 2} — in both an interior (branch-free full-tile store) and an
// edge (masked partial-lane store) variant, so ragged tile borders stay
// vectorized instead of falling back to scalar stores.
#pragma once

#include <cstdint>
#include <vector>

#include "core/fai.h"

namespace ndirect {

/// Where the input window lives and how to address it. Strides are in
/// floats; (c, ih, iw) is at src + c*chan_stride + ih*row_stride +
/// iw*col_stride. NCHW images have col_stride 1, NHWC have chan_stride 1.
struct PackGeometry {
  const float* src = nullptr;
  std::int64_t chan_stride = 0;
  std::int64_t row_stride = 0;
  std::int64_t col_stride = 1;
  int H = 0;    ///< input height bound (rows outside [0,H) pack as zero)
  int W = 0;    ///< input width bound
  int ih0 = 0;  ///< top input row of the window: oh*str - pad
  int iw0 = 0;  ///< left input col of the window: wv*str - pad
  /// Input-column step between consecutive packed elements. 1 packs the
  /// contiguous window; for 1x1 stride-s convolutions the engine packs
  /// every s-th column (stride compaction), letting the micro-kernel
  /// run its stride-1 form on a fully dense buffer.
  int iw_step = 1;
};

/// One micro-kernel invocation: geometry of the tile and its operands.
///
/// `pack` usually points at the linear buffer laid out [tc][R][packw]
/// (pack_c_stride = R*packw, pack_r_stride = packw). When a window is
/// fully interior and needs no compaction (1x1 stride-1), the engine
/// instead points `pack` directly into the input tensor and sets the
/// strides to the tensor's channel/row strides — the compute kernels
/// only ever read rows through these two strides.
struct MicroArgs {
  float* pack = nullptr;        ///< packed buffer or in-place input rows
  std::int64_t pack_c_stride = 0;  ///< float stride between channels
  std::int64_t pack_r_stride = 0;  ///< float stride between window rows
  const float* ftile = nullptr; ///< filter tile for this kb: [c][R][S][vk]
  std::int64_t f_c_stride = 0;  ///< stride between channels in ftile
  int tc = 0;                   ///< channels in this C tile
  int R = 0, S = 0, str = 1;
  int packw = 0;
  float* out = nullptr;         ///< output element (w=0, k=0) of the tile
  std::int64_t out_k_stride = 0;  ///< NCHW: P*Q,  NHWC: 1
  std::int64_t out_w_stride = 0;  ///< NCHW: 1,    NHWC: K
  int wn = 0;                   ///< valid output columns (<= vw)
  int kn = 0;                   ///< valid output channels (<= vk)
  bool accumulate = false;      ///< add into out (later C tiles)

  // Store-time epilogue (operator fusion, Section 10 direction): both
  // are applied by the engine only on the final C tile's stores, so a
  // convolution with bias/ReLU costs no extra pass over the output.
  const float* bias = nullptr;  ///< kn per-channel values, or nullptr
  bool relu = false;            ///< clamp stores at zero
};

/// Upper bounds accepted by the generic kernels (cover every block that
/// can satisfy Eq. 3).
inline constexpr int kMaxVw = 24;
inline constexpr int kMaxVk = 24;

using ComputeKernelFn = void (*)(const MicroArgs&);
using FusedKernelFn = void (*)(const MicroArgs&, const PackGeometry&);

/// Compile-time mirror of register_block_feasible() for the paper's
/// FP32 / 128-bit / 32-register instantiation (Eq. 3 with lanes = 4):
/// the predicate the policy registry is generated from. A test
/// cross-checks it against the runtime fai.h solver.
constexpr bool kernel_block_feasible(int vw, int vk, int S) {
  if (vw < 4 || vw > kMaxVw || vk < 4 || vk > kMaxVk) return false;
  if (vw % 4 != 0 || vk % 4 != 0) return false;
  // ceil((vw+S-1)/4) input regs + vk/4 filter regs + vw*vk/4 accumulators
  // must fit the 32 NEON registers.
  return (vw + S - 1 + 3) / 4 + vk / 4 + vw * vk / 4 <= 32;
}

/// How a policy kernel stores its tile.
enum class TailMode : std::uint8_t {
  kInterior,  ///< requires wn == Vw and kn == Vk; branch-free full store
  kEdge,      ///< any wn <= Vw, kn <= Vk; masked partial-lane stores
};

/// One instantiated policy: the (Vw, Vk, S, stride, tail-mode) tuple and
/// the generated compute / fused-pack-compute entry points.
struct KernelEntry {
  int vw = 0;
  int vk = 0;
  int S = 0;
  int str = 0;
  TailMode tail = TailMode::kInterior;
  ComputeKernelFn compute = nullptr;
  FusedKernelFn fused = nullptr;
};

/// Every instantiated policy: each Eq. 3-feasible block x S in
/// {1, 3, 5, 7} x stride in {1, 2} x {interior, edge}. Deterministic
/// order (S, then vw, then vk, then stride, then tail mode).
const std::vector<KernelEntry>& kernel_registry();

/// The distinct (vw, vk) blocks present in the registry — the real
/// instantiation space the auto-tuner should search.
const std::vector<RegisterBlock>& microkernel_blocks();

/// How a convolution's (block, S, stride) resolved against the registry.
enum class KernelClass : std::uint8_t {
  kUnrolled,     ///< fully unrolled policy kernels (interior + edge)
  kSpecialized,  ///< compile-time block, runtime S/stride loops
  kGeneric,      ///< runtime-loop fallback — counted in telemetry
};

const char* kernel_class_name(KernelClass cls);

/// Per-conv kernel resolution: the engine calls this once per (block,
/// S, stride) — not per tile — and dispatches tiles to `interior` when
/// the tile is full (wn == vw, kn == vk) and to `edge` otherwise. For
/// kSpecialized both slots hold the same runtime-S kernel (it branches
/// internally); for kGeneric all slots are nullptr and the caller must
/// use compute_kernel_generic (and count the fallback). `reason` says
/// why the resolution fell short of kUnrolled ("" when it didn't).
struct KernelResolution {
  ComputeKernelFn interior = nullptr;
  ComputeKernelFn edge = nullptr;
  FusedKernelFn interior_fused = nullptr;
  FusedKernelFn edge_fused = nullptr;
  KernelClass cls = KernelClass::kGeneric;
  const char* reason = "";
};

KernelResolution resolve_kernel(int vw, int vk, int S, int str);

/// Fully unrolled Algorithm 3 kernel: compile-time Vw, Vk, S and stride.
/// The input window is preloaded into ceil(packw/4) vector registers and
/// every (w, s) tap becomes one lane-indexed FMA, exactly as lines 3-14
/// of Algorithm 3 arrange it. Returns the registry's interior-store
/// policy for the tuple, or nullptr when it is not instantiated (block
/// infeasible under Eq. 3, S outside {1, 3, 5, 7}, or stride > 2).
/// NOTE: reads the pack buffer in whole vectors, so rows must be
/// readable up to the next multiple of 4 floats (the engine allocates
/// the buffer with that slack).
ComputeKernelFn find_unrolled_kernel(int vw, int vk, int S, int str);

/// Specialized (compile-time Vw/Vk, runtime S/stride) main micro-kernel
/// for the given block, or nullptr when no specialization is
/// instantiated.
ComputeKernelFn find_compute_kernel(int vw, int vk);

/// Specialized fused pack+compute kernel, or nullptr.
FusedKernelFn find_fused_kernel(int vw, int vk);

/// Runtime-parameterized kernels (any vw <= kMaxVw, vk <= kMaxVk,
/// vk % 4 == 0). Last-resort fallback for blocks outside the registry
/// (scalar ragged stores); every invocation the engine makes of these
/// is counted in Counter::kGenericFallback.
void compute_kernel_generic(const MicroArgs& args, int vw, int vk);
void fused_kernel_generic(const MicroArgs& args, const PackGeometry& geom,
                          int vw, int vk);

/// The standalone packing micro-kernel (sequential-packing mode and the
/// non-first C tiles of fused mode).
void pack_window(float* pack, const PackGeometry& geom, int tc, int R,
                 int packw);

}  // namespace ndirect
