// Policy registry slice for kernel width S = 7 (ResNet's 7x7 stride-2
// stem). The widest blocks drop out here: (24, 4) and (4, 24) exceed
// the Eq. 3 budget once the input row needs ceil((vw+6)/4) registers.
#include "core/microkernel_generator.h"

namespace ndirect {
namespace detail {
namespace {
constexpr auto kTable = build_policy_table<7>();
}  // namespace

PolicySpan policy_entries_s7() { return {kTable.data(), kTable.size()}; }

}  // namespace detail
}  // namespace ndirect
