// FP64 direct convolution — the Section 3.3 datatype extension.
//
// "Our current implementation supports single floating-point (FP32) ...
// but our techniques can be applied to other data types, including
// FP16, FP64 and INT16" by adjusting the analytical model parameters.
// This module instantiates the claim for FP64: the Eq. 3/4 solver runs
// with lanes = 2 (two doubles per 128-bit register), the Eq. 1/2 tiling
// uses 8-byte elements, and the micro-kernel is the same outer-product
// pattern on vec128d. The loop nest is the double-precision mirror of
// Algorithm 2 (single C-tile accumulation per pass, fused packing).
#pragma once

#include "core/fai.h"
#include "core/tiling.h"
#include "runtime/thread_pool.h"
#include "tensor/conv_params.h"

namespace ndirect {

struct Fp64Plan {
  RegisterBlock rb{};   ///< Eq. 3/4 with lanes = 2
  TilingPlan tiling{};  ///< Eq. 1/2 with 8-byte elements
};

/// Solve the plan for a shape (exposed for tests/benches).
Fp64Plan solve_fp64_plan(const ConvParams& p, const CacheInfo& cache);

/// input NCHW [N,C,H,W], filter KCRS [K,C,R,S], output NCHW [N,K,P,Q],
/// all double. Output is overwritten. Parallelized over (n, row-block)
/// with the global pool (or `pool`).
void ndirect_conv_fp64(const double* input, const double* filter,
                       double* output, const ConvParams& p,
                       ThreadPool* pool = nullptr);

/// Naive Algorithm 1 reference in double (long-double accumulation).
void naive_conv_fp64(const double* input, const double* filter,
                     double* output, const ConvParams& p);

}  // namespace ndirect
