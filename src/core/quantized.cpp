#include "core/quantized.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "core/fai.h"
#include "runtime/aligned_buffer.h"

namespace ndirect {

std::int32_t choose_qmax(std::int64_t reduction_len) {
  if (reduction_len < 1) reduction_len = 1;
  const double limit =
      std::sqrt(static_cast<double>((1u << 31) - 1) /
                static_cast<double>(reduction_len));
  return static_cast<std::int32_t>(
      std::min(32767.0, std::floor(limit)));
}

QuantizedTensor quantize_tensor(const float* data, std::size_t n,
                                std::int32_t qmax) {
  QuantizedTensor q;
  float max_abs = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    max_abs = std::max(max_abs, std::fabs(data[i]));
  }
  q.scale = max_abs > 0 ? max_abs / static_cast<float>(qmax) : 1.0f;
  q.values.resize(n);
  const float inv = 1.0f / q.scale;
  for (std::size_t i = 0; i < n; ++i) {
    const float v = data[i] * inv;
    const auto r = static_cast<std::int32_t>(std::lrintf(v));
    q.values[i] = static_cast<std::int16_t>(
        std::clamp<std::int32_t>(r, -qmax, qmax));
  }
  return q;
}

void dequantize(const QuantizedTensor& q, float* out) {
  for (std::size_t i = 0; i < q.values.size(); ++i) {
    out[i] = q.scale * static_cast<float>(q.values[i]);
  }
}

namespace {

// Pack one (c, ih) int16 row segment with zero padding.
void pack_row_i16(std::int16_t* dst, const std::int16_t* image, int c,
                  int ih, int iw0, const ConvParams& p, int packw) {
  if (ih < 0 || ih >= p.H) {
    std::memset(dst, 0,
                sizeof(std::int16_t) * static_cast<std::size_t>(packw));
    return;
  }
  const std::int16_t* row =
      image + (static_cast<std::int64_t>(c) * p.H + ih) * p.W;
  for (int t = 0; t < packw; ++t) {
    const int iw = iw0 + t;
    dst[t] = (iw < 0 || iw >= p.W) ? std::int16_t{0} : row[iw];
  }
}

}  // namespace

void ndirect_conv_int16(const std::int16_t* input,
                        const std::int16_t* filter, std::int32_t* output,
                        const ConvParams& p, ThreadPool* pool) {
  assert(p.valid());
  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::global();
  // Register block: int16 packs 8 lanes per 128-bit vector but
  // accumulates in 4-lane int32, so the accumulator budget matches the
  // FP32 geometry; reuse the FP32 solution (widening halves vk's
  // effective lanes, hence vk stays a multiple of 4).
  const RegisterBlock rb = solve_register_block(p.S);
  const int vw = rb.vw, vk = rb.vk;
  const int packw = (vw - 1) * p.str + p.S;
  const int P = p.P(), Q = p.Q();
  const std::int64_t kb_count = (p.K + vk - 1) / vk;
  const std::int64_t crs = std::int64_t{p.C} * p.R * p.S;
  const std::int64_t rs = std::int64_t{p.R} * p.S;

  // Widen-free packed filter: [KB][C][R][S][vk] int16, K zero-padded.
  AlignedBuffer<std::int16_t> packed_filter(
      static_cast<std::size_t>(kb_count) * p.C * rs * vk);
  packed_filter.fill_zero();
  for (int k = 0; k < p.K; ++k) {
    const std::int64_t kb = k / vk, ki = k % vk;
    for (int c = 0; c < p.C; ++c) {
      for (std::int64_t e = 0; e < rs; ++e) {
        packed_filter[static_cast<std::size_t>(
            ((kb * p.C + c) * rs + e) * vk + ki)] =
            filter[k * crs + c * rs + e];
      }
    }
  }

  const std::int64_t total_rows = std::int64_t{p.N} * P;
  tp.parallel_for(
      static_cast<std::size_t>(total_rows),
      [&](std::size_t row_begin, std::size_t row_end) {
        AlignedBuffer<std::int16_t> pack(
            static_cast<std::size_t>(p.C) * p.R * packw);
        std::vector<std::int32_t> acc(
            static_cast<std::size_t>(vw) * vk);
        for (std::size_t row = row_begin; row < row_end; ++row) {
          const std::int64_t n = static_cast<std::int64_t>(row) / P;
          const int oh = static_cast<int>(row % P);
          const std::int16_t* image =
              input + n * std::int64_t{p.C} * p.H * p.W;
          std::int32_t* out_image =
              output + n * std::int64_t{p.K} * P * Q;

          for (int wv = 0; wv < Q; wv += vw) {
            const int wn = std::min(vw, Q - wv);
            for (int c = 0; c < p.C; ++c) {
              for (int r = 0; r < p.R; ++r) {
                pack_row_i16(
                    pack.data() +
                        (static_cast<std::int64_t>(c) * p.R + r) * packw,
                    image, c, oh * p.str + r - p.pad, wv * p.str - p.pad,
                    p, packw);
              }
            }
            for (std::int64_t kb = 0; kb < kb_count; ++kb) {
              const std::int64_t kv = kb * vk;
              const int kn =
                  static_cast<int>(std::min<std::int64_t>(vk, p.K - kv));
              std::fill(acc.begin(), acc.end(), 0);
              const std::int16_t* ftile =
                  packed_filter.data() + kb * p.C * rs * vk;
              // The widening MAC loop (SMLAL shape): int16 * int16
              // products accumulate into int32 lanes.
              for (int c = 0; c < p.C; ++c) {
                const std::int16_t* brows =
                    pack.data() +
                    (static_cast<std::int64_t>(c) * p.R) * packw;
                const std::int16_t* fc = ftile + c * rs * vk;
                for (int r = 0; r < p.R; ++r) {
                  const std::int16_t* brow = brows + r * packw;
                  const std::int16_t* frow = fc + r * p.S * vk;
                  for (int s = 0; s < p.S; ++s) {
                    const std::int16_t* fv = frow + s * vk;
                    for (int w = 0; w < wn; ++w) {
                      const std::int32_t x = brow[w * p.str + s];
                      std::int32_t* arow = acc.data() + w * vk;
                      for (int j = 0; j < kn; ++j) {
                        arow[j] += x * fv[j];
                      }
                    }
                  }
                }
              }
              for (int k = 0; k < kn; ++k) {
                std::int32_t* orow =
                    out_image + ((kv + k) * P + oh) * Q + wv;
                for (int w = 0; w < wn; ++w) {
                  orow[w] = acc[static_cast<std::size_t>(w) * vk +
                                static_cast<std::size_t>(k)];
                }
              }
            }
          }
        }
      });
}

std::vector<float> quantized_conv_fp32(const float* input,
                                       const float* filter,
                                       const ConvParams& p,
                                       ThreadPool* pool) {
  const std::int64_t reduction = std::int64_t{p.C} * p.R * p.S;
  const std::int32_t qmax = choose_qmax(reduction);
  const QuantizedTensor qin = quantize_tensor(
      input, static_cast<std::size_t>(p.input_elems()), qmax);
  const QuantizedTensor qflt = quantize_tensor(
      filter, static_cast<std::size_t>(p.filter_elems()), qmax);

  std::vector<std::int32_t> acc(
      static_cast<std::size_t>(p.output_elems()));
  ndirect_conv_int16(qin.values.data(), qflt.values.data(), acc.data(), p,
                     pool);

  std::vector<float> out(acc.size());
  const float scale = qin.scale * qflt.scale;
  for (std::size_t i = 0; i < acc.size(); ++i) {
    out[i] = scale * static_cast<float>(acc[i]);
  }
  return out;
}

void naive_conv_int16(const std::int16_t* input,
                      const std::int16_t* filter, std::int64_t* output,
                      const ConvParams& p) {
  const int P = p.P(), Q = p.Q();
  for (int n = 0; n < p.N; ++n)
    for (int k = 0; k < p.K; ++k)
      for (int oj = 0; oj < P; ++oj)
        for (int oi = 0; oi < Q; ++oi) {
          std::int64_t sum = 0;
          for (int c = 0; c < p.C; ++c)
            for (int r = 0; r < p.R; ++r) {
              const int ij = p.str * oj + r - p.pad;
              if (ij < 0 || ij >= p.H) continue;
              for (int s = 0; s < p.S; ++s) {
                const int ii = p.str * oi + s - p.pad;
                if (ii < 0 || ii >= p.W) continue;
                sum += static_cast<std::int64_t>(
                           input[((std::int64_t{n} * p.C + c) * p.H +
                                  ij) *
                                     p.W +
                                 ii]) *
                       filter[((std::int64_t{k} * p.C + c) * p.R + r) *
                                  p.S +
                              s];
              }
            }
          output[((std::int64_t{n} * p.K + k) * P + oj) * Q + oi] = sum;
        }
}

}  // namespace ndirect
