#include "core/quantized.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>

#include "core/fai.h"
#include "runtime/aligned_buffer.h"
#include "runtime/scratch.h"
#include "simd/vec128.h"
#include "simd/vec128_int8.h"

namespace ndirect {

std::int32_t choose_qmax(std::int64_t reduction_len) {
  if (reduction_len < 1) reduction_len = 1;
  const double limit =
      std::sqrt(static_cast<double>((1u << 31) - 1) /
                static_cast<double>(reduction_len));
  return static_cast<std::int32_t>(
      std::min(32767.0, std::floor(limit)));
}

QuantizedTensor quantize_tensor(const float* data, std::size_t n,
                                std::int32_t qmax) {
  QuantizedTensor q;
  float max_abs = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    max_abs = std::max(max_abs, std::fabs(data[i]));
  }
  q.scale = max_abs > 0 ? max_abs / static_cast<float>(qmax) : 1.0f;
  q.values.resize(n);
  const float inv = 1.0f / q.scale;
  for (std::size_t i = 0; i < n; ++i) {
    const float v = data[i] * inv;
    const auto r = static_cast<std::int32_t>(std::lrintf(v));
    q.values[i] = static_cast<std::int16_t>(
        std::clamp<std::int32_t>(r, -qmax, qmax));
  }
  return q;
}

void dequantize(const QuantizedTensor& q, float* out) {
  for (std::size_t i = 0; i < q.values.size(); ++i) {
    out[i] = q.scale * static_cast<float>(q.values[i]);
  }
}

namespace {

// Pack one (c, ih) int16 row segment with zero padding.
void pack_row_i16(std::int16_t* dst, const std::int16_t* image, int c,
                  int ih, int iw0, const ConvParams& p, int packw) {
  if (ih < 0 || ih >= p.H) {
    std::memset(dst, 0,
                sizeof(std::int16_t) * static_cast<std::size_t>(packw));
    return;
  }
  const std::int16_t* row =
      image + (static_cast<std::int64_t>(c) * p.H + ih) * p.W;
  for (int t = 0; t < packw; ++t) {
    const int iw = iw0 + t;
    dst[t] = (iw < 0 || iw >= p.W) ? std::int16_t{0} : row[iw];
  }
}

}  // namespace

void ndirect_conv_int16(const std::int16_t* input,
                        const std::int16_t* filter, std::int32_t* output,
                        const ConvParams& p, ThreadPool* pool) {
  assert(p.valid());
  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::global();
  // Register block: int16 packs 8 lanes per 128-bit vector but
  // accumulates in 4-lane int32, so the accumulator budget matches the
  // FP32 geometry; reuse the FP32 solution (widening halves vk's
  // effective lanes, hence vk stays a multiple of 4).
  const RegisterBlock rb = solve_register_block(p.S);
  const int vw = rb.vw, vk = rb.vk;
  const int packw = (vw - 1) * p.str + p.S;
  const int P = p.P(), Q = p.Q();
  const std::int64_t kb_count = (p.K + vk - 1) / vk;
  const std::int64_t crs = std::int64_t{p.C} * p.R * p.S;
  const std::int64_t rs = std::int64_t{p.R} * p.S;

  // Widen-free packed filter: [KB][C][R][S][vk] int16, K zero-padded.
  AlignedBuffer<std::int16_t> packed_filter(
      static_cast<std::size_t>(kb_count) * p.C * rs * vk);
  packed_filter.fill_zero();
  for (int k = 0; k < p.K; ++k) {
    const std::int64_t kb = k / vk, ki = k % vk;
    for (int c = 0; c < p.C; ++c) {
      for (std::int64_t e = 0; e < rs; ++e) {
        packed_filter[static_cast<std::size_t>(
            ((kb * p.C + c) * rs + e) * vk + ki)] =
            filter[k * crs + c * rs + e];
      }
    }
  }

  const std::int64_t total_rows = std::int64_t{p.N} * P;
  tp.parallel_for(
      static_cast<std::size_t>(total_rows),
      [&](std::size_t row_begin, std::size_t row_end) {
        AlignedBuffer<std::int16_t> pack(
            static_cast<std::size_t>(p.C) * p.R * packw);
        std::vector<std::int32_t> acc(
            static_cast<std::size_t>(vw) * vk);
        for (std::size_t row = row_begin; row < row_end; ++row) {
          const std::int64_t n = static_cast<std::int64_t>(row) / P;
          const int oh = static_cast<int>(row % P);
          const std::int16_t* image =
              input + n * std::int64_t{p.C} * p.H * p.W;
          std::int32_t* out_image =
              output + n * std::int64_t{p.K} * P * Q;

          for (int wv = 0; wv < Q; wv += vw) {
            const int wn = std::min(vw, Q - wv);
            for (int c = 0; c < p.C; ++c) {
              for (int r = 0; r < p.R; ++r) {
                pack_row_i16(
                    pack.data() +
                        (static_cast<std::int64_t>(c) * p.R + r) * packw,
                    image, c, oh * p.str + r - p.pad, wv * p.str - p.pad,
                    p, packw);
              }
            }
            for (std::int64_t kb = 0; kb < kb_count; ++kb) {
              const std::int64_t kv = kb * vk;
              const int kn =
                  static_cast<int>(std::min<std::int64_t>(vk, p.K - kv));
              std::fill(acc.begin(), acc.end(), 0);
              const std::int16_t* ftile =
                  packed_filter.data() + kb * p.C * rs * vk;
              // The widening MAC loop (SMLAL shape): int16 * int16
              // products accumulate into int32 lanes.
              for (int c = 0; c < p.C; ++c) {
                const std::int16_t* brows =
                    pack.data() +
                    (static_cast<std::int64_t>(c) * p.R) * packw;
                const std::int16_t* fc = ftile + c * rs * vk;
                for (int r = 0; r < p.R; ++r) {
                  const std::int16_t* brow = brows + r * packw;
                  const std::int16_t* frow = fc + r * p.S * vk;
                  for (int s = 0; s < p.S; ++s) {
                    const std::int16_t* fv = frow + s * vk;
                    for (int w = 0; w < wn; ++w) {
                      const std::int32_t x = brow[w * p.str + s];
                      std::int32_t* arow = acc.data() + w * vk;
                      for (int j = 0; j < kn; ++j) {
                        arow[j] += x * fv[j];
                      }
                    }
                  }
                }
              }
              for (int k = 0; k < kn; ++k) {
                std::int32_t* orow =
                    out_image + ((kv + k) * P + oh) * Q + wv;
                for (int w = 0; w < wn; ++w) {
                  orow[w] = acc[static_cast<std::size_t>(w) * vk +
                                static_cast<std::size_t>(k)];
                }
              }
            }
          }
        }
      });
}

std::vector<float> quantized_conv_fp32(const float* input,
                                       const float* filter,
                                       const ConvParams& p,
                                       ThreadPool* pool) {
  const std::int64_t reduction = std::int64_t{p.C} * p.R * p.S;
  const std::int32_t qmax = choose_qmax(reduction);
  const QuantizedTensor qin = quantize_tensor(
      input, static_cast<std::size_t>(p.input_elems()), qmax);
  const QuantizedTensor qflt = quantize_tensor(
      filter, static_cast<std::size_t>(p.filter_elems()), qmax);

  std::vector<std::int32_t> acc(
      static_cast<std::size_t>(p.output_elems()));
  ndirect_conv_int16(qin.values.data(), qflt.values.data(), acc.data(), p,
                     pool);

  std::vector<float> out(acc.size());
  const float scale = qin.scale * qflt.scale;
  for (std::size_t i = 0; i < acc.size(); ++i) {
    out[i] = scale * static_cast<float>(acc[i]);
  }
  return out;
}

void naive_conv_int16(const std::int16_t* input,
                      const std::int16_t* filter, std::int64_t* output,
                      const ConvParams& p) {
  const int P = p.P(), Q = p.Q();
  for (int n = 0; n < p.N; ++n)
    for (int k = 0; k < p.K; ++k)
      for (int oj = 0; oj < P; ++oj)
        for (int oi = 0; oi < Q; ++oi) {
          std::int64_t sum = 0;
          for (int c = 0; c < p.C; ++c)
            for (int r = 0; r < p.R; ++r) {
              const int ij = p.str * oj + r - p.pad;
              if (ij < 0 || ij >= p.H) continue;
              for (int s = 0; s < p.S; ++s) {
                const int ii = p.str * oi + s - p.pad;
                if (ii < 0 || ii >= p.W) continue;
                sum += static_cast<std::int64_t>(
                           input[((std::int64_t{n} * p.C + c) * p.H +
                                  ij) *
                                     p.W +
                                 ii]) *
                       filter[((std::int64_t{k} * p.C + c) * p.R + r) *
                                  p.S +
                              s];
              }
            }
          output[((std::int64_t{n} * p.K + k) * P + oj) * Q + oi] = sum;
        }
}

// ---------------------------------------------------------------------------
// INT8 path
// ---------------------------------------------------------------------------

std::int32_t choose_qmax_int8(std::int64_t reduction_len) {
  // Exact integer search (the sqrt/floor shortcut of choose_qmax is off
  // by one exactly at the boundary: 133144 * 127^2 = 2147479576 still
  // fits, but floor(sqrt(INT32_MAX / 133144)) = 126).
  constexpr std::int64_t kMax = std::numeric_limits<std::int32_t>::max();
  if (reduction_len < 1) reduction_len = 1;
  if (reduction_len >= kMax) return 1;
  std::int32_t q = 127;
  while (q > 1 && reduction_len * q * q > kMax) --q;
  return q;
}

QuantizedActivation quantize_activation_u8(const float* data,
                                           std::size_t n) {
  float lo = 0.0f, hi = 0.0f;  // range includes 0 (exact padding)
  for (std::size_t i = 0; i < n; ++i) {
    lo = std::min(lo, data[i]);
    hi = std::max(hi, data[i]);
  }
  QuantizedActivation q;
  const float range = hi - lo;
  q.scale = range > 0 ? range / 255.0f : 1.0f;
  const float inv = 1.0f / q.scale;
  q.zero_point = std::clamp<std::int32_t>(
      static_cast<std::int32_t>(std::lrintf(-lo * inv)), 0, 255);
  q.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t v =
        static_cast<std::int32_t>(std::lrintf(data[i] * inv)) +
        q.zero_point;
    q.values[i] =
        static_cast<std::uint8_t>(std::clamp<std::int32_t>(v, 0, 255));
  }
  return q;
}

QuantizedFilterI8 quantize_filter_i8(const float* filter,
                                     const ConvParams& p) {
  const std::int64_t crs = std::int64_t{p.C} * p.R * p.S;
  const std::int32_t qmax = choose_qmax_int8(crs);
  QuantizedFilterI8 q;
  q.values.resize(static_cast<std::size_t>(p.K) * crs);
  q.scales.resize(static_cast<std::size_t>(p.K));
  for (int k = 0; k < p.K; ++k) {
    const float* src = filter + k * crs;
    float max_abs = 0.0f;
    for (std::int64_t e = 0; e < crs; ++e) {
      max_abs = std::max(max_abs, std::fabs(src[e]));
    }
    const float scale =
        max_abs > 0 ? max_abs / static_cast<float>(qmax) : 1.0f;
    q.scales[static_cast<std::size_t>(k)] = scale;
    const float inv = 1.0f / scale;
    std::int8_t* dst = q.values.data() + k * crs;
    for (std::int64_t e = 0; e < crs; ++e) {
      const auto r = static_cast<std::int32_t>(std::lrintf(src[e] * inv));
      dst[e] = static_cast<std::int8_t>(
          std::clamp<std::int32_t>(r, -qmax, qmax));
    }
  }
  return q;
}

/// Packed filter: [kb][c4][R][S][vk][4] s8 (K zero-padded to vk, C to
/// 4) plus per-k filter-tap sums (the zero-point compensation base).
struct Int8Conv::PackedFilter {
  const std::int8_t* key = nullptr;
  AlignedBuffer<std::int8_t> data;
  std::vector<std::int32_t> rowsum;  ///< K: sum of filter k's s8 taps
  explicit PackedFilter(std::size_t bytes) : data(bytes) {}
};

namespace {

/// The execution shape: 1x1/stride-1/no-pad convolutions flatten the
/// P x Q output plane into one long row (the fp32 engine's row
/// flattening), so late small-spatial layers don't pay a ragged tile
/// per 7-wide row.
struct I8ExecShape {
  int H, W, P, Q;
};

I8ExecShape i8_exec_shape(const ConvParams& p) {
  if (p.R == 1 && p.S == 1 && p.str == 1 && p.pad == 0) {
    return {1, p.H * p.W, 1, p.P() * p.Q()};
  }
  return {p.H, p.W, p.P(), p.Q()};
}

std::shared_ptr<const Int8Conv::PackedFilter> i8_pack_filter(
    const std::int8_t* filter, const ConvParams& p, int vk);

/// Pack one input window: [c4][R][rowbytes] with every byte XORed with
/// 0x80 (u - 128 as s8). Spatial padding and the c >= C channel lanes
/// fill with `border` = zp ^ 0x80, so border taps cancel exactly under
/// the zero-point compensation and padded channel lanes meet zero
/// filter taps.
void i8_pack_window(std::int8_t* dst, const std::uint8_t* image, int C,
                    int H, int W, int c4, int R, int ih0, int iw0,
                    int packw, int rowbytes, std::int8_t border) {
  for (int g = 0; g < c4; ++g) {
    for (int r = 0; r < R; ++r) {
      std::int8_t* drow =
          dst + (static_cast<std::int64_t>(g) * R + r) * rowbytes;
      std::memset(drow, border, static_cast<std::size_t>(rowbytes));
      const int ih = ih0 + r;
      if (ih < 0 || ih >= H) continue;
      const int t0 = std::max(0, -iw0);
      const int t1 = std::min(packw, W - iw0);
      for (int j = 0; j < 4; ++j) {
        const int c = 4 * g + j;
        if (c >= C) break;
        const std::uint8_t* row =
            image + (static_cast<std::int64_t>(c) * H + ih) * W + iw0;
        std::int8_t* d = drow + j;
        for (int t = t0; t < t1; ++t) {
          d[4 * t] = static_cast<std::int8_t>(row[t] ^ 0x80u);
        }
      }
    }
  }
}

/// Finish one vw x kn accumulator tile: add the zero-point compensation
/// and store through the epilogue mode. Shared by every backend, so
/// outputs are bitwise identical whenever the accumulators are.
void i8_store_tile(const Int8Epilogue& ep, const Int8Output& out,
                   const std::int32_t* acc, const std::int32_t* comp,
                   int vw, int wn, int kn, std::int64_t kv,
                   std::int64_t k_stride, std::int64_t base) {
  for (int k = 0; k < kn; ++k) {
    const std::int64_t kk = kv + k;
    const std::int32_t* arow = acc + static_cast<std::int64_t>(k) * vw;
    const std::int64_t off = base + kk * k_stride;
    const std::int32_t cadd = comp[kk];
    if (out.f32 != nullptr) {
      float* orow = out.f32 + off;
      const vec128f dq = vdup(ep.dequant_scale[kk]);
      const vec128f bb =
          vdup(ep.bias != nullptr ? ep.bias[kk] : 0.0f);
      const vec128i cc = vdup_i32(cadd);
      for (int w0 = 0; w0 < wn; w0 += 4) {
        const int m = std::min(4, wn - w0);
        vec128f v = vfma(
            bb, vcvt_f32_i32(vadd_i32(vload_i32(arow + w0), cc)), dq);
        if (ep.relu) v = vmax(v, vzero());
        if (m == 4) {
          vstore(orow + w0, v);
        } else {
          vstore_lanes(orow + w0, v, m);
        }
      }
    } else if (out.s8 != nullptr) {
      std::int8_t* orow = out.s8 + off;
      const float mult = ep.requant_scale[kk];
      const std::int32_t badd =
          ep.bias_i32 != nullptr ? ep.bias_i32[kk] : 0;
      for (int w = 0; w < wn; ++w) {
        const std::int32_t a = arow[w] + cadd + badd;
        // Round-to-nearest-even (nearbyintf under the default
        // FE_TONEAREST mode), then saturate to the symmetric [-127,
        // 127] range around the output zero point.
        std::int32_t q = static_cast<std::int32_t>(std::nearbyintf(
                             static_cast<float>(a) * mult)) +
                         ep.out_zero_point;
        if (ep.relu) q = std::max(q, ep.out_zero_point);
        orow[w] = static_cast<std::int8_t>(
            std::clamp<std::int32_t>(q, -127, 127));
      }
    } else {
      std::int32_t* orow = out.i32 + off;
      const vec128i cc = vdup_i32(cadd);
      int w = 0;
      for (; w + 4 <= wn; w += 4) {
        vstore_i32(orow + w, vadd_i32(vload_i32(arow + w), cc));
      }
      for (; w < wn; ++w) orow[w] = arow[w] + cadd;
    }
  }
}

std::shared_ptr<const Int8Conv::PackedFilter> i8_pack_filter(
    const std::int8_t* filter, const ConvParams& p, int vk) {
  const std::int64_t c4 = (p.C + 3) / 4;
  const std::int64_t kb_count = (p.K + vk - 1) / vk;
  const std::int64_t rs = std::int64_t{p.R} * p.S;
  const std::int64_t crs = std::int64_t{p.C} * rs;
  const std::int64_t tile = c4 * rs * vk * 4;  // bytes per kb
  auto pf = std::make_shared<Int8Conv::PackedFilter>(
      static_cast<std::size_t>(kb_count * tile));
  pf->key = filter;
  pf->data.fill_zero();
  pf->rowsum.assign(static_cast<std::size_t>(p.K), 0);
  for (int k = 0; k < p.K; ++k) {
    const std::int64_t kb = k / vk, ki = k % vk;
    std::int32_t sum = 0;
    for (int c = 0; c < p.C; ++c) {
      const std::int64_t g = c / 4, j = c % 4;
      const std::int8_t* src = filter + k * crs + c * rs;
      // dst tap (kb, g, r, s): vector byte ki*4 + j of the vk*4 block.
      std::int8_t* dst =
          pf->data.data() + kb * tile + g * rs * vk * 4 + ki * 4 + j;
      for (std::int64_t e = 0; e < rs; ++e) {
        dst[e * vk * 4] = src[e];
        sum += src[e];
      }
    }
    pf->rowsum[static_cast<std::size_t>(k)] = sum;
  }
  return pf;
}

}  // namespace

Int8Conv::Int8Conv(const ConvParams& p, const Int8ConvOptions& opt)
    : p_(p), opt_(opt) {
  rb_ = (opt_.force_block.vw > 0 && opt_.force_block.vk > 0)
            ? opt_.force_block
            : solve_register_block(p_.S);
  kres_ = resolve_int8_kernel(rb_.vw, rb_.vk, p_.S, p_.str, opt_.backend);
}

Int8Conv::~Int8Conv() = default;

Int8Backend Int8Conv::backend() const {
  return kres_.fn != nullptr ? kres_.backend : Int8Backend::kScalar;
}

void Int8Conv::prepare_filter(const std::int8_t* filter) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (packed_ != nullptr && packed_->key == filter) return;
  packed_ = i8_pack_filter(filter, p_, rb_.vk);
}

void Int8Conv::run(const std::uint8_t* input, int in_zero_point,
                   const std::int8_t* filter, const Int8Epilogue& ep,
                   const Int8Output& out, Int8RunStats* stats) const {
  assert(p_.valid());
  assert((out.i32 != nullptr) + (out.s8 != nullptr) +
             (out.f32 != nullptr) ==
         1);
  std::shared_ptr<const PackedFilter> pf;
  if (opt_.cache_packed_filter) {
    prepare_filter(filter);
    std::lock_guard<std::mutex> lock(mu_);
    pf = packed_;
  } else {
    pf = i8_pack_filter(filter, p_, rb_.vk);
  }

  ThreadPool& tp =
      opt_.pool != nullptr ? *opt_.pool : ThreadPool::global();
  const int vw = rb_.vw, vk = rb_.vk;
  const I8ExecShape ex = i8_exec_shape(p_);
  const int packw = (vw - 1) * p_.str + p_.S;
  const int rowbytes = ((packw + 3) / 4) * 16;
  const int c4 = (p_.C + 3) / 4;
  const std::int64_t kb_count = (p_.K + vk - 1) / vk;
  const std::int64_t ftile_stride =
      static_cast<std::int64_t>(c4) * p_.R * p_.S * vk * 4;
  const std::int64_t k_stride = std::int64_t{ex.P} * ex.Q;
  const auto border =
      static_cast<std::int8_t>(static_cast<unsigned>(in_zero_point) ^
                               0x80u);

  // comp[k] = (128 - zp) * sum(w_k): rowsum is cached at pack time, the
  // zero point arrives per run.
  std::vector<std::int32_t> comp(static_cast<std::size_t>(p_.K));
  for (int k = 0; k < p_.K; ++k) {
    comp[static_cast<std::size_t>(k)] =
        (128 - in_zero_point) * pf->rowsum[static_cast<std::size_t>(k)];
  }

  const I8KernelFn fn = kres_.fn;
  const int tq = (ex.Q + vw - 1) / vw;
  const std::int64_t tiles_per_image = std::int64_t{ex.P} * tq;
  const std::int64_t total = p_.N * tiles_per_image;
  std::atomic<std::uint64_t> kernel_calls{0};
  std::atomic<std::uint64_t> generic_calls{0};

  tp.parallel_for(
      static_cast<std::size_t>(total),
      [&](std::size_t begin, std::size_t end) {
        const ScratchDepth depth;
        ScratchArena& arena = this_thread_scratch();
        const std::size_t pack_bytes =
            static_cast<std::size_t>(c4) * p_.R * rowbytes;
        auto* pack = reinterpret_cast<std::int8_t*>(arena.floats(
            depth.level(), ScratchSlot::kAux0, pack_bytes / 4));
        auto* acc = reinterpret_cast<std::int32_t*>(
            arena.floats(depth.level(), ScratchSlot::kAux1,
                         static_cast<std::size_t>(vw) * vk));
        std::uint64_t local_calls = 0, local_generic = 0;
        for (std::size_t t = begin; t < end; ++t) {
          const auto ti = static_cast<std::int64_t>(t);
          const std::int64_t n = ti / tiles_per_image;
          const std::int64_t rem = ti % tiles_per_image;
          const int oh = static_cast<int>(rem / tq);
          const int wv = static_cast<int>(rem % tq) * vw;
          const int wn = std::min(vw, ex.Q - wv);
          const std::uint8_t* image =
              input + n * std::int64_t{p_.C} * ex.H * ex.W;
          const std::int64_t out_base =
              n * std::int64_t{p_.K} * k_stride +
              std::int64_t{oh} * ex.Q + wv;

          i8_pack_window(pack, image, p_.C, ex.H, ex.W, c4, p_.R,
                         oh * p_.str - p_.pad, wv * p_.str - p_.pad,
                         packw, rowbytes, border);
          for (std::int64_t kb = 0; kb < kb_count; ++kb) {
            const std::int64_t kv = kb * vk;
            const int kn =
                static_cast<int>(std::min<std::int64_t>(vk, p_.K - kv));
            I8MicroArgs a;
            a.pack = pack;
            a.pack_c4_stride = std::int64_t{p_.R} * rowbytes;
            a.pack_r_stride = rowbytes;
            a.ftile = pf->data.data() + kb * ftile_stride;
            a.f_c4_stride = std::int64_t{p_.R} * p_.S * vk * 4;
            a.c4 = c4;
            a.R = p_.R;
            a.S = p_.S;
            a.str = p_.str;
            a.packw = packw;
            a.acc = acc;
            ++local_calls;
            if (fn != nullptr) {
              fn(a);
            } else {
              ++local_generic;
              int8_kernel_generic(a, vw, vk);
            }
            i8_store_tile(ep, out, acc, comp.data(), vw, wn, kn, kv,
                          k_stride, out_base);
          }
        }
        kernel_calls.fetch_add(local_calls, std::memory_order_relaxed);
        generic_calls.fetch_add(local_generic,
                                std::memory_order_relaxed);
      });

  if (stats != nullptr) {
    stats->tiles = kernel_calls.load(std::memory_order_relaxed);
    stats->generic_fallback =
        generic_calls.load(std::memory_order_relaxed);
    stats->backend = backend();
    stats->vw = vw;
    stats->vk = vk;
    stats->reason = kres_.reason;
  }
}

std::vector<float> int8_conv_fp32(const float* input, const float* filter,
                                  const ConvParams& p, const float* bias,
                                  bool relu, const Int8ConvOptions& opt,
                                  Int8RunStats* stats) {
  const QuantizedActivation qin = quantize_activation_u8(
      input, static_cast<std::size_t>(p.input_elems()));
  const QuantizedFilterI8 qf = quantize_filter_i8(filter, p);
  std::vector<float> dq(static_cast<std::size_t>(p.K));
  for (int k = 0; k < p.K; ++k) {
    dq[static_cast<std::size_t>(k)] =
        qin.scale * qf.scales[static_cast<std::size_t>(k)];
  }
  Int8Epilogue ep;
  ep.dequant_scale = dq.data();
  ep.bias = bias;
  ep.relu = relu;
  std::vector<float> result(static_cast<std::size_t>(p.output_elems()));
  Int8Output o;
  o.f32 = result.data();
  const Int8Conv conv(p, opt);
  conv.run(qin.values.data(), qin.zero_point, qf.values.data(), ep, o,
           stats);
  return result;
}

void naive_conv_int8(const std::uint8_t* input, int in_zero_point,
                     const std::int8_t* filter, std::int32_t* output,
                     const ConvParams& p) {
  const int P = p.P(), Q = p.Q();
  for (int n = 0; n < p.N; ++n)
    for (int k = 0; k < p.K; ++k)
      for (int oj = 0; oj < P; ++oj)
        for (int oi = 0; oi < Q; ++oi) {
          std::int32_t sum = 0;
          for (int c = 0; c < p.C; ++c)
            for (int r = 0; r < p.R; ++r) {
              const int ij = p.str * oj + r - p.pad;
              if (ij < 0 || ij >= p.H) continue;
              for (int s = 0; s < p.S; ++s) {
                const int ii = p.str * oi + s - p.pad;
                if (ii < 0 || ii >= p.W) continue;
                sum +=
                    (static_cast<std::int32_t>(
                         input[((std::int64_t{n} * p.C + c) * p.H + ij) *
                                   p.W +
                               ii]) -
                     in_zero_point) *
                    static_cast<std::int32_t>(
                        filter[((std::int64_t{k} * p.C + c) * p.R + r) *
                                   p.S +
                               s]);
              }
            }
          output[((std::int64_t{n} * p.K + k) * P + oj) * Q + oi] = sum;
        }
}

}  // namespace ndirect
