// Policy registry slice for kernel width S = 1 (1x1 convolutions and
// stride-compacted pointwise layers). Each kernel width compiles in its
// own translation unit so the full instantiation set builds in parallel.
#include "core/microkernel_generator.h"

namespace ndirect {
namespace detail {
namespace {
constexpr auto kTable = build_policy_table<1>();
}  // namespace

PolicySpan policy_entries_s1() { return {kTable.data(), kTable.size()}; }

}  // namespace detail
}  // namespace ndirect
