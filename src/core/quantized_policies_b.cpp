// Int8 policy kernel instantiations for S = 5 and S = 7.
#include "core/quantized_microkernel.h"

namespace ndirect {
namespace detail {
namespace {

constexpr auto kTableS5 = build_i8_policy_table<5>();
constexpr auto kTableS7 = build_i8_policy_table<7>();

}  // namespace

I8PolicySpan i8_policy_entries_s5() {
  return {kTableS5.data(), kTableS5.size()};
}

I8PolicySpan i8_policy_entries_s7() {
  return {kTableS7.data(), kTableS7.size()};
}

}  // namespace detail
}  // namespace ndirect
