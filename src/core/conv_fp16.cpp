#include "core/conv_fp16.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "core/microkernel.h"
#include "runtime/aligned_buffer.h"

namespace ndirect {
namespace {

// Widen one (c, ih) input row segment into the fp32 pack buffer,
// zero-filling outside the (padded) input.
void pack_row_fp16(float* dst, const fp16_t* image, int c, int ih, int iw0,
                   const ConvParams& p, int packw) {
  if (ih < 0 || ih >= p.H) {
    std::memset(dst, 0, sizeof(float) * static_cast<std::size_t>(packw));
    return;
  }
  const fp16_t* row =
      image + (static_cast<std::int64_t>(c) * p.H + ih) * p.W;
  for (int t = 0; t < packw; ++t) {
    const int iw = iw0 + t;
    dst[t] = (iw < 0 || iw >= p.W) ? 0.0f : fp16_to_fp32(row[iw]);
  }
}

}  // namespace

void ndirect_conv_fp16(const fp16_t* input, const fp16_t* filter,
                       fp16_t* output, const ConvParams& p,
                       ThreadPool* pool) {
  assert(p.valid());
  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::global();
  const RegisterBlock rb = solve_register_block(p.S);
  const int vw = rb.vw, vk = rb.vk;
  const int packw = (vw - 1) * p.str + p.S;
  const int P = p.P(), Q = p.Q();
  const std::int64_t kb_count = (p.K + vk - 1) / vk;
  const std::int64_t f_c_stride = std::int64_t{p.R} * p.S * vk;

  // Operator setup: widen the filter once into the packed fp32 layout
  // [KB][C][R][S][vk] (K zero-padded).
  AlignedBuffer<float> packed_filter(
      static_cast<std::size_t>(kb_count) * p.C * p.R * p.S * vk);
  packed_filter.fill_zero();
  {
    const std::int64_t crs = std::int64_t{p.C} * p.R * p.S;
    const std::int64_t rs = std::int64_t{p.R} * p.S;
    for (int k = 0; k < p.K; ++k) {
      const std::int64_t kb = k / vk, ki = k % vk;
      for (int c = 0; c < p.C; ++c) {
        for (std::int64_t e = 0; e < rs; ++e) {
          packed_filter[static_cast<std::size_t>(
              ((kb * p.C + c) * rs + e) * vk + ki)] =
              fp16_to_fp32(filter[k * crs + c * rs + e]);
        }
      }
    }
  }

  const std::int64_t total_rows = std::int64_t{p.N} * P;
  tp.parallel_for(
      static_cast<std::size_t>(total_rows),
      [&](std::size_t row_begin, std::size_t row_end) {
        // Full-C pack buffer: the whole reduction runs in one kernel
        // call so fp32 accumulation completes before any fp16 store.
        AlignedBuffer<float> pack(static_cast<std::size_t>(p.C) * p.R *
                                  packw);
        AlignedBuffer<float> staging(static_cast<std::size_t>(vw) * vk);
        for (std::size_t row = row_begin; row < row_end; ++row) {
          const std::int64_t n = static_cast<std::int64_t>(row) / P;
          const int oh = static_cast<int>(row % P);
          const fp16_t* image =
              input + n * std::int64_t{p.C} * p.H * p.W;
          fp16_t* out_image = output + n * std::int64_t{p.K} * P * Q;

          for (int wv = 0; wv < Q; wv += vw) {
            const int wn = std::min(vw, Q - wv);
            for (int c = 0; c < p.C; ++c) {
              for (int r = 0; r < p.R; ++r) {
                pack_row_fp16(
                    pack.data() +
                        (static_cast<std::int64_t>(c) * p.R + r) * packw,
                    image, c, oh * p.str + r - p.pad, wv * p.str - p.pad,
                    p, packw);
              }
            }
            for (std::int64_t kb = 0; kb < kb_count; ++kb) {
              const std::int64_t kv = kb * vk;
              const int kn =
                  static_cast<int>(std::min<std::int64_t>(vk, p.K - kv));
              MicroArgs a;
              a.pack = pack.data();
              a.pack_c_stride = std::int64_t{p.R} * packw;
              a.pack_r_stride = packw;
              a.ftile = packed_filter.data() + kb * p.C * f_c_stride;
              a.f_c_stride = f_c_stride;
              a.tc = p.C;
              a.R = p.R;
              a.S = p.S;
              a.str = p.str;
              a.packw = packw;
              a.out = staging.data();
              a.out_k_stride = vw;
              a.out_w_stride = 1;
              a.wn = wn;
              a.kn = kn;
              a.accumulate = false;
              compute_kernel_generic(a, vw, vk);
              // Narrow the finished fp32 tile into the fp16 output.
              for (int k = 0; k < kn; ++k) {
                fp16_t* orow =
                    out_image + ((kv + k) * P + oh) * Q + wv;
                const float* srow = staging.data() + k * vw;
                for (int w = 0; w < wn; ++w) {
                  orow[w] = fp32_to_fp16(srow[w]);
                }
              }
            }
          }
        }
      });
}

void naive_conv_fp16(const fp16_t* input, const fp16_t* filter,
                     fp16_t* output, const ConvParams& p) {
  const int P = p.P(), Q = p.Q();
  for (int n = 0; n < p.N; ++n)
    for (int k = 0; k < p.K; ++k)
      for (int oj = 0; oj < P; ++oj)
        for (int oi = 0; oi < Q; ++oi) {
          double sum = 0;
          for (int c = 0; c < p.C; ++c)
            for (int r = 0; r < p.R; ++r) {
              const int ij = p.str * oj + r - p.pad;
              if (ij < 0 || ij >= p.H) continue;
              for (int s = 0; s < p.S; ++s) {
                const int ii = p.str * oi + s - p.pad;
                if (ii < 0 || ii >= p.W) continue;
                sum += static_cast<double>(fp16_to_fp32(
                           input[((std::int64_t{n} * p.C + c) * p.H +
                                  ij) *
                                     p.W +
                                 ii])) *
                       fp16_to_fp32(
                           filter[((std::int64_t{k} * p.C + c) * p.R +
                                   r) *
                                      p.S +
                                  s]);
              }
            }
          output[((std::int64_t{n} * p.K + k) * P + oj) * Q + oi] =
              fp32_to_fp16(static_cast<float>(sum));
        }
}

}  // namespace ndirect
