#include "core/threading.h"

#include <cmath>

namespace ndirect {

double ptn_continuous(const ConvParams& p, double alpha) {
  const double nhw = static_cast<double>(p.N) * p.H * p.W;
  const double krs = static_cast<double>(p.K) * p.R * p.S;
  return std::sqrt(alpha * nhw / (krs * p.str * p.str));
}

double thread_fai(const ConvParams& p, double alpha, int ptn) {
  const double nhw = static_cast<double>(p.N) * p.H * p.W;
  const double krs = static_cast<double>(p.K) * p.R * p.S;
  const double denom =
      static_cast<double>(ptn) * p.str * p.str / nhw + alpha / (krs * ptn);
  return 1.0 / denom;
}

ThreadMapping solve_thread_mapping(const ConvParams& p, double alpha,
                                   int threads, bool allow_partial) {
  ThreadMapping best{1, threads > 0 ? threads : 1};
  if (threads <= 1) return {1, 1};

  double best_fai = -1.0;
  for (int ptn = 1; ptn <= threads; ++ptn) {
    const bool exact = threads % ptn == 0;
    if (!exact && !allow_partial) continue;
    // A PTn larger than the row space or a PTk larger than K would
    // leave whole thread groups idle.
    if (std::int64_t{ptn} > std::int64_t{p.N} * p.P()) continue;
    int ptk = threads / ptn;
    if (ptk > p.K) {
      // Exact grids cannot shrink PTk without stranding threads; partial
      // grids clamp to K and let the scheduler's stealers soak up the
      // remainder.
      if (!allow_partial) continue;
      ptk = p.K;
      if (ptk < 1) continue;
    }
    const double fai = thread_fai(p, alpha, ptn);
    // The paper takes the up-bound of PTn* when FAIs tie (the packing
    // kernel makes extra PTn cheap), so ties prefer the larger PTn;
    // among FAI-tied grids a fuller one (more seeded threads) wins so
    // divisor thread counts keep the paper's exact mapping.
    const int total = ptn * ptk;
    const int best_total = best_fai < 0 ? 0 : best.total();
    if (fai > best_fai + 1e-12 ||
        (fai > best_fai - 1e-12 &&
         (total > best_total ||
          (total == best_total && ptn > best.ptn)))) {
      best = {ptn, ptk};
      best_fai = fai;
    }
  }
  if (best_fai < 0) {
    // Degenerate shapes (tiny K and tiny row space): fall back to rows.
    const int ptn =
        static_cast<int>(std::min<std::int64_t>(threads,
                                                std::int64_t{p.N} * p.P()));
    return {ptn > 0 ? ptn : 1, 1};
  }
  return best;
}

std::vector<int> partition_workers(int workers,
                                   const std::vector<double>& weights) {
  const int n = static_cast<int>(weights.size());
  std::vector<int> out(static_cast<std::size_t>(n), 1);
  if (n == 0 || workers <= n) return out;
  double total = 0;
  for (const double w : weights) total += w > 0 ? w : 0;
  const int extra = workers - n;
  if (total <= 0) {
    for (int i = 0; i < extra; ++i) ++out[static_cast<std::size_t>(i % n)];
    return out;
  }
  std::vector<double> frac(static_cast<std::size_t>(n));
  int assigned = 0;
  for (int i = 0; i < n; ++i) {
    const double share =
        (weights[i] > 0 ? weights[i] : 0) / total * extra;
    const int whole = static_cast<int>(share);
    out[static_cast<std::size_t>(i)] += whole;
    assigned += whole;
    frac[static_cast<std::size_t>(i)] = share - whole;
  }
  for (; assigned < extra; ++assigned) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < frac.size(); ++i)
      if (frac[i] > frac[best]) best = i;
    ++out[best];
    frac[best] = -1;  // each branch wins at most one remainder worker
  }
  return out;
}

ThreadSlice thread_slice(const ThreadMapping& mapping, int tid,
                         std::int64_t total_rows, std::int64_t k_blocks) {
  const int tn = tid / mapping.ptk;
  const int tk = tid % mapping.ptk;
  ThreadSlice slice;
  slice.rows = partition_range(static_cast<std::size_t>(total_rows),
                               static_cast<std::size_t>(mapping.ptn),
                               static_cast<std::size_t>(tn));
  slice.k_blocks = partition_range(static_cast<std::size_t>(k_blocks),
                                   static_cast<std::size_t>(mapping.ptk),
                                   static_cast<std::size_t>(tk));
  return slice;
}

}  // namespace ndirect
