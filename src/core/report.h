// Predicted-vs-measured report for one convolution run: the
// observability product on top of the telemetry layer.
//
// A TelemetrySnapshot says what happened (per-worker tiles, steals,
// phase time, wall time); the analytical side of this repo says what
// *should* have happened (Eq. 5/6 thread-mapping FAI, the perf-model
// roofline on a PlatformSpec). ConvReport joins the two so "the model
// said PT = 4 x 2, reality says the PTk lanes starve" is a one-line
// diagnosis instead of a debugging session.
//
// Note on layering: this header lives with the core engine types it
// describes, but its implementation needs platform/specs +
// platform/perf_model, so report.cpp is compiled into the
// ndirect_platform library (which links ndirect_core publicly) — link
// ndirect_platform to use build_conv_report().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/ndirect.h"
#include "platform/perf_model.h"
#include "platform/specs.h"
#include "runtime/telemetry.h"

namespace ndirect {

struct ConvReport {
  std::string platform;     ///< spec the prediction was evaluated on
  ConvParams params{};
  /// Datatype the prediction was evaluated for (the measured side is
  /// whatever engine filled the telemetry; GFLOPS are always
  /// fp32-equivalent so dtypes share one roofline).
  ConvDtype dtype = ConvDtype::kF32;
  ThreadMapping mapping{};  ///< the planned PTn x PTk grid
  int stealers = 0;         ///< pure stealers beyond the grid
  double alpha = 0;         ///< pack/compute cost ratio the plan used

  // Throughput: measured from telemetry wall time, predicted from the
  // roofline model on the platform spec.
  double wall_seconds = 0;
  double measured_gflops = 0;
  double predicted_gflops = 0;
  double peak_gflops = 0;       ///< platform peak (all cores)
  double roofline_compute = 0;  ///< compute-side roofline term
  double roofline_memory = 0;   ///< bandwidth-side roofline term
  double model_ratio = 0;       ///< measured / predicted (0 if no wall)

  // Thread-mapping model (Eq. 5/6) evaluated on the executed problem.
  double mapping_fai = 0;  ///< per-thread FAI of the planned PTn
  double best_fai = 0;     ///< best FAI over all PTn in [1, workers]
  double ptn_star = 0;     ///< Eq. 6 continuous optimum PTn*

  // Kernel resolution (Section 5): which micro-kernel class the conv's
  // (block, S, stride) resolved to — "unrolled" (policy registry),
  // "specialized" (runtime-S loops), or "generic" — with the resolver's
  // reason when it fell short of unrolled, plus the telemetry count of
  // tile calls that used the generic runtime-loop kernel.
  std::string kernel_class;
  std::string kernel_reason;
  std::uint64_t generic_fallback = 0;

  // Scheduler outcome.
  std::uint64_t tiles = 0;
  std::uint64_t steals = 0;
  std::uint64_t local_steals = 0;
  std::uint64_t neighbour_steals = 0;
  std::uint64_t global_steals = 0;

  // Hardware-counter (PMU) section, aggregated from the Counter::kPmu*
  // telemetry rows. has_pmu is false — and every field below zero —
  // when NDIRECT_PMU=0 or perf_event_open is unavailable on the host,
  // so reports stay identical modulo zeros either way.
  bool has_pmu = false;
  std::uint64_t pmu_cycles = 0;
  std::uint64_t pmu_instructions = 0;
  std::uint64_t l1d_misses = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t stalled_cycles = 0;
  double ipc = 0;             ///< instructions per cycle
  double stall_fraction = 0;  ///< backend-stall cycles / cycles
  double l1d_mpki = 0;        ///< L1D misses per kilo-instruction
  /// Measured arithmetic intensity: flops / (LLC misses x 64B line) —
  /// directly comparable to predicted_ai (the model's flops over
  /// essential DRAM traffic). 0 when LLC misses were not counted.
  double measured_ai = 0;
  double predicted_ai = 0;
  // NDIRECT_PMU=2 only: the pack-vs-compute L1D split.
  std::uint64_t pack_l1d_misses = 0;
  std::uint64_t micro_l1d_misses = 0;

  struct Worker {
    int id = 0;
    std::uint64_t tiles = 0;
    std::uint64_t steals = 0;
    double busy_seconds = 0;
    double busy_fraction = 0;  ///< busy / wall, in [0,1]
    std::uint64_t l1d_misses = 0;  ///< PMU, 0 when has_pmu is false
    std::uint64_t llc_misses = 0;
  };
  std::vector<Worker> workers;
  double busy_min = 0, busy_max = 0, busy_mean = 0;

  /// Human-readable diagnoses ("worker 5 starves", "measured is 0.4x
  /// the model"); empty when the run matches the model.
  std::vector<std::string> diagnoses;

  std::string to_text() const;
  std::string to_json() const;
};

/// Build the report for `conv` from the snapshot one of its runs filled
/// (NdirectOptions::telemetry / ConvOp::set_telemetry). `spec` selects
/// the platform the prediction is evaluated on; nullptr means the
/// probed host_platform() (first call measures peak and bandwidth with
/// microbenchmarks — pass a spec in tests).
ConvReport build_conv_report(const NdirectConv& conv,
                             const TelemetrySnapshot& telemetry,
                             const PlatformSpec* spec = nullptr,
                             ConvDtype dtype = ConvDtype::kF32);

}  // namespace ndirect
