// Depthwise and depthwise-separable convolution (Section 10.2).
//
// The paper sketches the integration: pointwise convolution is the 1x1
// kernel nDirect already handles ("it can be seen as the 1x1
// convolution kernel with vectorizable dimension K"), and depthwise
// convolution "only needs removing the reduction operations of
// dimension C in micro-kernels". This module implements exactly that:
// a register-blocked depthwise kernel that accumulates over (r, s) only
// — each channel convolves independently — plus the fused
// depthwise+pointwise pair that forms the MobileNet/Xception building
// block.
#pragma once

#include "core/ndirect.h"
#include "runtime/thread_pool.h"
#include "tensor/conv_params.h"
#include "tensor/tensor.h"

namespace ndirect {

/// Depthwise problem: one filter per channel (channel multiplier 1).
/// Uses ConvParams with K == C; R/S/str/pad as usual.
struct DepthwiseParams {
  int N = 1, C = 1, H = 1, W = 1;
  int R = 1, S = 1, str = 1, pad = 0;

  int P() const { return (H + 2 * pad - R) / str + 1; }
  int Q() const { return (W + 2 * pad - S) / str + 1; }
  bool valid() const {
    return N > 0 && C > 0 && H > 0 && W > 0 && R > 0 && S > 0 &&
           str > 0 && pad >= 0 && H + 2 * pad >= R && W + 2 * pad >= S;
  }
  std::int64_t flops() const {
    return 2LL * N * C * P() * Q() * R * S;
  }
};

/// input NCHW [N,C,H,W], filter [C,1,R,S] (KCRS with K=C, C=1)
/// -> output NCHW [N,C,P,Q].
Tensor depthwise_conv_nchw(const Tensor& input, const Tensor& filter,
                           const DepthwiseParams& p,
                           ThreadPool* pool = nullptr);

/// Reference implementation (double accumulation) for tests.
Tensor depthwise_conv_reference(const Tensor& input, const Tensor& filter,
                                const DepthwiseParams& p);

/// Depthwise-separable block: depthwise (dw_filter [C,1,R,S]) followed
/// by pointwise (pw_filter [K,C,1,1], executed by NdirectConv).
/// Returns [N,K,P,Q].
Tensor separable_conv_nchw(const Tensor& input, const Tensor& dw_filter,
                           const Tensor& pw_filter,
                           const DepthwiseParams& dw, int K,
                           ThreadPool* pool = nullptr);

}  // namespace ndirect
