// IEEE-754 binary16 conversion utilities (the FP16 half of the
// Section 3.3 datatype extension).
//
// ARMv8.2 FP16 keeps tensors in half precision to halve the memory
// footprint/bandwidth. On hosts without native FP16 arithmetic the
// standard approach (used here) is fp16 *storage* with fp32 *compute*:
// values widen on load and narrow on store. These scalar conversions
// implement round-to-nearest-even with full subnormal/inf/NaN handling
// (hardware F16C is used when the compiler provides it).
#pragma once

#include <cstdint>

#if defined(__F16C__)
#include <immintrin.h>
#endif

namespace ndirect {

using fp16_t = std::uint16_t;  ///< raw binary16 bits

float fp16_to_fp32(fp16_t h);
fp16_t fp32_to_fp16(float f);

/// Portable software conversions, always compiled (the public functions
/// route to F16C hardware when available; tests cross-check both).
float fp16_to_fp32_soft(fp16_t h);
fp16_t fp32_to_fp16_soft(float f);

/// Bulk conversions (vectorized where the ISA helps).
void fp16_to_fp32_n(const fp16_t* src, float* dst, std::size_t n);
void fp32_to_fp16_n(const float* src, fp16_t* dst, std::size_t n);

}  // namespace ndirect
