#include "core/report.h"

#include <algorithm>
#include <cstdio>

#include "core/microkernel.h"
#include "core/threading.h"

namespace ndirect {
namespace {

std::string fmt1(double v, const char* spec = "%.1f") {
  char buf[48];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

std::string fmt_json(double v) { return fmt1(v, "%.9g"); }

}  // namespace

ConvReport build_conv_report(const NdirectConv& conv,
                             const TelemetrySnapshot& telemetry,
                             const PlatformSpec* spec, ConvDtype dtype) {
  const PlatformSpec& plat = spec != nullptr ? *spec : host_platform();
  const NdirectPlan& plan = conv.plan();
  const ConvParams& p = conv.params();
  const ConvParams& exec = conv.exec_params();
  const int threads = plan.mapping.total() + plan.stealers;

  ConvReport r;
  r.platform = plat.name;
  r.params = p;
  r.mapping = plan.mapping;
  r.stealers = plan.stealers;
  r.alpha = plan.alpha;

  r.dtype = dtype;
  const PerfEstimate est =
      estimate_conv_perf(plat, p, ConvMethod::Ndirect, threads, dtype);
  r.predicted_gflops = est.gflops;
  r.peak_gflops = plat.peak_gflops;
  r.roofline_compute = est.compute_bound;
  r.roofline_memory = est.memory_bound;
  r.predicted_ai = est.ai;

  r.wall_seconds = telemetry.wall_seconds;
  if (r.wall_seconds > 0) {
    r.measured_gflops =
        static_cast<double>(p.flops()) / r.wall_seconds * 1e-9;
    if (r.predicted_gflops > 0)
      r.model_ratio = r.measured_gflops / r.predicted_gflops;
  }

  // Eq. 5/6 on the executed (row-flattened) problem — the shape the
  // planner actually solved the grid for.
  r.mapping_fai = thread_fai(exec, plan.alpha, plan.mapping.ptn);
  r.ptn_star = ptn_continuous(exec, plan.alpha);
  for (int ptn = 1; ptn <= std::max(1, threads); ++ptn)
    r.best_fai = std::max(r.best_fai, thread_fai(exec, plan.alpha, ptn));

  // Kernel resolution: mirror the engine's once-per-conv resolve (same
  // stride compaction rule) so the report names the class the tiles
  // actually dispatched to.
  const int kstr = exec.S == 1 && exec.str > 1 ? 1 : exec.str;
  if (conv.options().generic_kernel_only) {
    r.kernel_class = "generic (forced)";
    r.kernel_reason = "NdirectOptions::generic_kernel_only";
  } else {
    const KernelResolution kres =
        resolve_kernel(plan.rb.vw, plan.rb.vk, exec.S, kstr);
    r.kernel_class = kernel_class_name(kres.cls);
    r.kernel_reason = kres.reason;
  }
  r.generic_fallback = telemetry.total(Counter::kGenericFallback);

  r.tiles = telemetry.total(Counter::kTilesClaimed);
  r.local_steals = telemetry.total(Counter::kLocalSteals);
  r.neighbour_steals = telemetry.total(Counter::kNeighbourSteals);
  r.global_steals = telemetry.total(Counter::kGlobalSteals);
  r.steals = r.local_steals + r.neighbour_steals + r.global_steals;

  r.has_pmu = telemetry.has_pmu();
  if (r.has_pmu) {
    r.pmu_cycles = telemetry.total(Counter::kPmuCycles);
    r.pmu_instructions = telemetry.total(Counter::kPmuInstructions);
    r.l1d_misses = telemetry.total(Counter::kPmuL1DMisses);
    r.llc_misses = telemetry.total(Counter::kPmuLLCMisses);
    r.stalled_cycles = telemetry.total(Counter::kPmuStalledCycles);
    r.pack_l1d_misses = telemetry.total(Counter::kPmuPackL1DMisses);
    r.micro_l1d_misses = telemetry.total(Counter::kPmuMicroL1DMisses);
    if (r.pmu_cycles > 0) {
      r.ipc = static_cast<double>(r.pmu_instructions) /
              static_cast<double>(r.pmu_cycles);
      r.stall_fraction = static_cast<double>(r.stalled_cycles) /
                         static_cast<double>(r.pmu_cycles);
    }
    if (r.pmu_instructions > 0)
      r.l1d_mpki = 1000.0 * static_cast<double>(r.l1d_misses) /
                   static_cast<double>(r.pmu_instructions);
    // Each LLC miss moves one cache line from DRAM; flops over that
    // byte count is the run's measured arithmetic intensity.
    if (r.llc_misses > 0)
      r.measured_ai = static_cast<double>(p.flops()) /
                      (static_cast<double>(r.llc_misses) * 64.0);
  }

  r.busy_min = telemetry.workers.empty() ? 0.0 : 1.0;
  double busy_sum = 0;
  for (std::size_t w = 0; w < telemetry.workers.size(); ++w) {
    const TelemetrySnapshot::Worker& tw = telemetry.workers[w];
    ConvReport::Worker row;
    row.id = static_cast<int>(w);
    row.tiles = tw.value(Counter::kTilesClaimed);
    row.steals = tw.steals();
    row.busy_seconds = tw.busy_seconds();
    row.busy_fraction = telemetry.busy_fraction(static_cast<int>(w));
    row.l1d_misses = tw.value(Counter::kPmuL1DMisses);
    row.llc_misses = tw.value(Counter::kPmuLLCMisses);
    r.busy_min = std::min(r.busy_min, row.busy_fraction);
    r.busy_max = std::max(r.busy_max, row.busy_fraction);
    busy_sum += row.busy_fraction;
    r.workers.push_back(row);
  }
  if (!r.workers.empty())
    r.busy_mean = busy_sum / static_cast<double>(r.workers.size());

  // Diagnoses: the mismatches a reader would otherwise dig out of the
  // raw numbers.
  for (const ConvReport::Worker& w : r.workers) {
    if (r.busy_max > 0.2 && w.busy_fraction < 0.5 * r.busy_max) {
      r.diagnoses.push_back(
          "worker " + std::to_string(w.id) + " starves (busy " +
          fmt1(100 * w.busy_fraction) + "% vs max " +
          fmt1(100 * r.busy_max) +
          "%): its grid lane ran out of tiles; finer sched_row_chunk "
          "or a different PTn x PTk split would feed it");
    }
  }
  if (r.tiles > 0 && r.steals * 4 > r.tiles) {
    r.diagnoses.push_back(
        "steal rate " + fmt1(100.0 * static_cast<double>(r.steals) /
                             static_cast<double>(r.tiles)) +
        "% of tiles: the seed slices are ragged for this shape; the "
        "static Eq. 5/6 split would have idled here");
  }
  if (r.generic_fallback > 0) {
    r.diagnoses.push_back(
        std::to_string(r.generic_fallback) +
        " micro-kernel calls fell back to the generic runtime-loop "
        "kernel (" + r.kernel_reason +
        "): those tiles pay runtime loops and scalar stores — add the "
        "block to the policy registry (core/microkernel_generator.h)");
  } else if (r.kernel_class == "specialized") {
    r.diagnoses.push_back(
        "conv runs un-unrolled (" + r.kernel_reason +
        "): tiles use the runtime-S specialized kernel; instantiating "
        "this (S, stride) in the policy registry would unlock the "
        "fully unrolled Algorithm 3 form");
  }
  if (r.model_ratio > 0 && r.model_ratio < 0.5) {
    r.diagnoses.push_back(
        "measured is " + fmt1(r.model_ratio, "%.2f") +
        "x the model prediction: the machine is not delivering the "
        "spec'd roofline (co-tenants, thermal limits, or a stale "
        "platform spec)");
  }
  if (r.mapping_fai > 0 && r.best_fai > r.mapping_fai * 1.25) {
    r.diagnoses.push_back(
        "planned PTn=" + std::to_string(r.mapping.ptn) + " has FAI " +
        fmt1(r.mapping_fai) + " but PTn near " + fmt1(r.ptn_star) +
        " would reach " + fmt1(r.best_fai) +
        ": the divisor constraint cost this shape; the stealing "
        "schedule's partial grids can close the gap");
  }

  // Measured-vs-model diagnoses, only when hardware counters ran.
  if (r.has_pmu) {
    if (r.measured_ai > 0 && r.predicted_ai > 0 &&
        r.measured_ai < 0.5 * r.predicted_ai) {
      r.diagnoses.push_back(
          "measured arithmetic intensity " + fmt1(r.measured_ai, "%.2f") +
          " flops/B is under half the model's " +
          fmt1(r.predicted_ai, "%.2f") + ": the run moved ~" +
          fmt1(r.predicted_ai / r.measured_ai) +
          "x the essential DRAM traffic — the Tc x Th working set "
          "likely overflows this host's cache (re-solve the tiling "
          "against a measured CacheInfo)");
    }
    if (r.stall_fraction > 0.4 && r.roofline_compute <= r.roofline_memory) {
      r.diagnoses.push_back(
          "backend stalled " + fmt1(100 * r.stall_fraction) +
          "% of cycles though the model calls this layer compute-bound: "
          "latency the roofline does not see (TLB walks, prefetch "
          "misses, port pressure) is the real limiter");
    }
    const std::uint64_t phase_l1d = r.pack_l1d_misses + r.micro_l1d_misses;
    if (phase_l1d > 0) {
      const double miss_share =
          static_cast<double>(r.pack_l1d_misses) /
          static_cast<double>(phase_l1d);
      const double time_share =
          telemetry.phase_fraction(Counter::kPackNs);
      if (conv.options().fuse_packing && r.l1d_mpki > 20.0) {
        r.diagnoses.push_back(
            "packing not hidden: the fused phase misses L1D at " +
            fmt1(r.l1d_mpki) +
            " MPKI — the pack stream is evicting the register tile's "
            "operands instead of riding behind the FMAs (Tc too large "
            "for L1, or the window gather defeats the prefetcher)");
      } else if (!conv.options().fuse_packing && miss_share > 0.2 &&
                 miss_share > 2.0 * time_share) {
        r.diagnoses.push_back(
            "pack phase takes " + fmt1(100 * time_share) +
            "% of phase time but " + fmt1(100 * miss_share) +
            "% of L1D misses: the Tc x packw pack buffer overflows L1 "
            "on this host — a smaller Tc (or fused packing) would keep "
            "the window resident");
      }
    }
  }
  return r;
}

std::string ConvReport::to_text() const {
  std::string s;
  s += "ConvReport " + params.to_string() + " on " + platform + "\n";
  s += "  grid PTn x PTk = " + std::to_string(mapping.ptn) + " x " +
       std::to_string(mapping.ptk) + " (+" + std::to_string(stealers) +
       " stealers), " + std::to_string(workers.size()) + " workers\n";
  s += "  model: FAI(PTn=" + std::to_string(mapping.ptn) + ") = " +
       fmt1(mapping_fai) + ", best " + fmt1(best_fai) + " near PTn* = " +
       fmt1(ptn_star, "%.2f") + ", alpha = " + fmt1(alpha, "%.3f") + "\n";
  s += "  predicted " + fmt1(predicted_gflops) +
       " GFLOPS (roofline: compute " + fmt1(roofline_compute) +
       ", memory " + fmt1(roofline_memory) + "; peak " +
       fmt1(peak_gflops) + ")\n";
  s += "  measured  " + fmt1(measured_gflops) + " GFLOPS";
  if (model_ratio > 0)
    s += " (" + fmt1(model_ratio, "%.2f") + "x predicted";
  if (peak_gflops > 0)
    s += std::string(model_ratio > 0 ? ", " : " (") +
         fmt1(100 * measured_gflops / peak_gflops) + "% of peak)";
  else if (model_ratio > 0)
    s += ")";
  s += " over " + fmt1(wall_seconds * 1e3, "%.3f") + " ms\n";
  s += "  kernel: " + kernel_class +
       (kernel_reason.empty() ? std::string()
                              : " (" + kernel_reason + ")") +
       ", dtype " + conv_dtype_name(dtype) + ", generic fallback calls " +
       std::to_string(generic_fallback) + "\n";
  s += "  tiles " + std::to_string(tiles) + ", steals " +
       std::to_string(steals) + " (local " + std::to_string(local_steals) +
       " / neighbour " + std::to_string(neighbour_steals) + " / global " +
       std::to_string(global_steals) + ")\n";
  s += "  busy fraction: min " + fmt1(busy_min, "%.2f") + "  mean " +
       fmt1(busy_mean, "%.2f") + "  max " + fmt1(busy_max, "%.2f") + "\n";
  if (has_pmu) {
    s += "  pmu: IPC " + fmt1(ipc, "%.2f") + ", backend stalls " +
         fmt1(100 * stall_fraction) + "% of cycles\n";
    s += "  pmu: AI measured " + fmt1(measured_ai, "%.2f") +
         " flops/B vs model " + fmt1(predicted_ai, "%.2f") + " (L1D " +
         std::to_string(l1d_misses) + " misses, " +
         fmt1(l1d_mpki, "%.2f") + " MPKI; LLC " +
         std::to_string(llc_misses) + ")\n";
    if (pack_l1d_misses + micro_l1d_misses > 0) {
      s += "  pmu: L1D split — pack " + std::to_string(pack_l1d_misses) +
           " / compute " + std::to_string(micro_l1d_misses) + "\n";
    }
  }
  for (const Worker& w : workers) {
    s += "    worker " + std::to_string(w.id) + ": tiles " +
         std::to_string(w.tiles) + "  steals " + std::to_string(w.steals) +
         "  busy " + fmt1(100 * w.busy_fraction) + "%";
    if (has_pmu)
      s += "  l1d " + std::to_string(w.l1d_misses) + "  llc " +
           std::to_string(w.llc_misses);
    s += "\n";
  }
  if (diagnoses.empty()) {
    s += "  diagnosis: run matches the model\n";
  } else {
    for (const std::string& d : diagnoses) s += "  diagnosis: " + d + "\n";
  }
  return s;
}

std::string ConvReport::to_json() const {
  std::string s = "{";
  s += "\"platform\": \"" + platform + "\"";
  s += ", \"conv\": \"" + params.to_string() + "\"";
  s += ", \"ptn\": " + std::to_string(mapping.ptn);
  s += ", \"ptk\": " + std::to_string(mapping.ptk);
  s += ", \"stealers\": " + std::to_string(stealers);
  s += ", \"alpha\": " + fmt_json(alpha);
  s += ", \"wall_seconds\": " + fmt_json(wall_seconds);
  s += ", \"measured_gflops\": " + fmt_json(measured_gflops);
  s += ", \"predicted_gflops\": " + fmt_json(predicted_gflops);
  s += ", \"peak_gflops\": " + fmt_json(peak_gflops);
  s += ", \"roofline_compute\": " + fmt_json(roofline_compute);
  s += ", \"roofline_memory\": " + fmt_json(roofline_memory);
  s += ", \"model_ratio\": " + fmt_json(model_ratio);
  s += ", \"mapping_fai\": " + fmt_json(mapping_fai);
  s += ", \"best_fai\": " + fmt_json(best_fai);
  s += ", \"ptn_star\": " + fmt_json(ptn_star);
  s += ", \"dtype\": \"" + std::string(conv_dtype_name(dtype)) + "\"";
  s += ", \"kernel_class\": \"" + kernel_class + "\"";
  s += ", \"kernel_reason\": \"" + kernel_reason + "\"";
  s += ", \"generic_fallback\": " + std::to_string(generic_fallback);
  s += ", \"tiles\": " + std::to_string(tiles);
  s += ", \"steals\": " + std::to_string(steals);
  s += ", \"local_steals\": " + std::to_string(local_steals);
  s += ", \"neighbour_steals\": " + std::to_string(neighbour_steals);
  s += ", \"global_steals\": " + std::to_string(global_steals);
  s += ", \"busy_min\": " + fmt_json(busy_min);
  s += ", \"busy_mean\": " + fmt_json(busy_mean);
  s += ", \"busy_max\": " + fmt_json(busy_max);
  s += std::string(", \"has_pmu\": ") + (has_pmu ? "true" : "false");
  s += ", \"pmu\": {\"cycles\": " + std::to_string(pmu_cycles);
  s += ", \"instructions\": " + std::to_string(pmu_instructions);
  s += ", \"l1d_misses\": " + std::to_string(l1d_misses);
  s += ", \"llc_misses\": " + std::to_string(llc_misses);
  s += ", \"stalled_cycles\": " + std::to_string(stalled_cycles);
  s += ", \"ipc\": " + fmt_json(ipc);
  s += ", \"stall_fraction\": " + fmt_json(stall_fraction);
  s += ", \"l1d_mpki\": " + fmt_json(l1d_mpki);
  s += ", \"measured_ai\": " + fmt_json(measured_ai);
  s += ", \"predicted_ai\": " + fmt_json(predicted_ai);
  s += ", \"pack_l1d_misses\": " + std::to_string(pack_l1d_misses);
  s += ", \"micro_l1d_misses\": " + std::to_string(micro_l1d_misses) + "}";
  s += ", \"per_worker\": [";
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const Worker& w = workers[i];
    if (i > 0) s += ", ";
    s += "{\"id\": " + std::to_string(w.id) +
         ", \"tiles\": " + std::to_string(w.tiles) +
         ", \"steals\": " + std::to_string(w.steals) +
         ", \"busy_seconds\": " + fmt_json(w.busy_seconds) +
         ", \"busy_fraction\": " + fmt_json(w.busy_fraction) +
         ", \"l1d_misses\": " + std::to_string(w.l1d_misses) +
         ", \"llc_misses\": " + std::to_string(w.llc_misses) + "}";
  }
  s += "], \"diagnoses\": [";
  for (std::size_t i = 0; i < diagnoses.size(); ++i) {
    if (i > 0) s += ", ";
    std::string esc;
    for (char c : diagnoses[i]) {
      if (c == '"' || c == '\\') esc += '\\';
      esc += c;
    }
    s += "\"" + esc + "\"";
  }
  s += "]}";
  return s;
}

}  // namespace ndirect
