#include "core/conv_fp64.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "runtime/aligned_buffer.h"
#include "simd/vec128.h"

namespace ndirect {

Fp64Plan solve_fp64_plan(const ConvParams& p, const CacheInfo& cache) {
  Fp64Plan plan;
  plan.rb = solve_register_block(p.S, kVecLanesF64, kNumVecRegs);
  // Eq. 1/2 count elements; doubles hold half as many per byte, which
  // is equivalent to solving with a half-sized cache.
  CacheInfo halved = cache;
  halved.l1d /= 2;
  halved.l2 /= 2;
  halved.l3 /= 2;
  plan.tiling = solve_tiling(halved, plan.rb, p);
  return plan;
}

namespace {

// Pack one (c, ih) row segment (zero-filled outside the input).
void pack_row_f64(double* dst, const double* image, int c, int ih, int iw0,
                  const ConvParams& p, int packw) {
  if (ih < 0 || ih >= p.H) {
    std::memset(dst, 0, sizeof(double) * static_cast<std::size_t>(packw));
    return;
  }
  const double* row = image +
                      (static_cast<std::int64_t>(c) * p.H + ih) * p.W;
  int t = 0;
  while (t < packw && iw0 + t < 0) dst[t++] = 0.0;
  int t_hi = packw;
  while (t_hi > t && iw0 + t_hi - 1 >= p.W) --t_hi;
  if (t_hi > t) {
    std::memcpy(dst + t, row + iw0 + t,
                sizeof(double) * static_cast<std::size_t>(t_hi - t));
  }
  for (int u = t_hi; u < packw; ++u) dst[u] = 0.0;
}

// The FP64 outer-product micro-kernel: vw x vk output tile, vec128d
// accumulators, runtime loop bounds (the datatype extension favours
// clarity; the FP32 path carries the unrolled forms).
void compute_tile_f64(const double* pack, const double* ftile,
                      std::int64_t f_c_stride, int tcn, const ConvParams& p,
                      int packw, int vw, int vk, double* out,
                      std::int64_t out_k_stride, int wn, int kn,
                      bool accumulate) {
  constexpr int kMaxW = 24, kMaxKv = 12;
  assert(vw <= kMaxW && vk / kVecLanesF64 <= kMaxKv);
  const int vkv = vk / kVecLanesF64;
  vec128d acc[kMaxW][kMaxKv];
  for (int w = 0; w < vw; ++w) {
    for (int j = 0; j < vkv; ++j) acc[w][j] = vzero_f64();
  }
  for (int c = 0; c < tcn; ++c) {
    const double* brows =
        pack + static_cast<std::int64_t>(c) * p.R * packw;
    const double* fc = ftile + c * f_c_stride;
    for (int r = 0; r < p.R; ++r) {
      const double* brow = brows + r * packw;
      const double* frow = fc + static_cast<std::int64_t>(r) * p.S * vk;
      for (int s = 0; s < p.S; ++s) {
        vec128d f[kMaxKv];
        for (int j = 0; j < vkv; ++j) {
          f[j] = vload_f64(frow + s * vk + kVecLanesF64 * j);
        }
        const double* b = brow + s;
        for (int w = 0; w < vw; ++w) {
          const vec128d x = vdup_f64(b[w * p.str]);
          for (int j = 0; j < vkv; ++j) {
            acc[w][j] = vfma_f64(acc[w][j], x, f[j]);
          }
        }
      }
    }
  }
  double tile[kMaxW][kMaxKv * kVecLanesF64];
  for (int w = 0; w < vw; ++w) {
    for (int j = 0; j < vkv; ++j) {
      vstore_f64(&tile[w][kVecLanesF64 * j], acc[w][j]);
    }
  }
  for (int w = 0; w < wn; ++w) {
    for (int k = 0; k < kn; ++k) {
      double* o = out + k * out_k_stride + w;
      *o = accumulate ? *o + tile[w][k] : tile[w][k];
    }
  }
}

// Transform the (kt, ct) filter tile to [kb][c][R][S][vk] doubles.
void transform_filter_tile_f64(const double* filter, const ConvParams& p,
                               int kt, int tkn, int ct, int tcn, int vk,
                               double* tile) {
  const int kb_count = (tkn + vk - 1) / vk;
  const std::int64_t crs = static_cast<std::int64_t>(p.C) * p.R * p.S;
  const std::int64_t rs = static_cast<std::int64_t>(p.R) * p.S;
  double* dst = tile;
  for (int kb = 0; kb < kb_count; ++kb) {
    for (int c = 0; c < tcn; ++c) {
      const std::int64_t src_c = static_cast<std::int64_t>(ct + c) * rs;
      for (std::int64_t e = 0; e < rs; ++e) {
        for (int ki = 0; ki < vk; ++ki) {
          const int k = kt + kb * vk + ki;
          *dst++ =
              (k < kt + tkn && k < p.K)
                  ? filter[static_cast<std::int64_t>(k) * crs + src_c + e]
                  : 0.0;
        }
      }
    }
  }
}

}  // namespace

void ndirect_conv_fp64(const double* input, const double* filter,
                       double* output, const ConvParams& p,
                       ThreadPool* pool) {
  assert(p.valid());
  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::global();
  const Fp64Plan plan = solve_fp64_plan(p, probe_host_cpu().cache);
  const int vw = plan.rb.vw, vk = plan.rb.vk;
  const int tc = plan.tiling.tc;
  const std::int64_t tk_blocks = std::max(1, plan.tiling.tk / vk);
  const std::int64_t k_blocks = (p.K + vk - 1) / vk;
  const int packw = (vw - 1) * p.str + p.S;
  const int P = p.P(), Q = p.Q();
  const std::int64_t f_c_stride = std::int64_t{p.R} * p.S * vk;
  const std::int64_t total_rows = std::int64_t{p.N} * P;

  tp.parallel_for(
      static_cast<std::size_t>(total_rows),
      [&](std::size_t row_begin, std::size_t row_end) {
        AlignedBuffer<double> pack(static_cast<std::size_t>(tc) * p.R *
                                   packw);
        AlignedBuffer<double> ftile(static_cast<std::size_t>(tk_blocks) *
                                    vk * tc * p.R * p.S);
        for (std::size_t row = row_begin; row < row_end; ++row) {
          const std::int64_t n = static_cast<std::int64_t>(row) / P;
          const int oh = static_cast<int>(row % P);
          const double* image =
              input + n * std::int64_t{p.C} * p.H * p.W;
          double* out_image =
              output + n * std::int64_t{p.K} * P * Q;

          for (int ct = 0; ct < p.C; ct += tc) {
            const int tcn = std::min(tc, p.C - ct);
            const bool first_c = ct == 0;
            for (std::int64_t kb0 = 0; kb0 < k_blocks; kb0 += tk_blocks) {
              const std::int64_t kbn =
                  std::min<std::int64_t>(tk_blocks, k_blocks - kb0);
              transform_filter_tile_f64(filter, p,
                                        static_cast<int>(kb0) * vk,
                                        static_cast<int>(kbn) * vk, ct,
                                        tcn, vk, ftile.data());
              for (int wv = 0; wv < Q; wv += vw) {
                const int wn = std::min(vw, Q - wv);
                // Packing micro-kernel (first kv iteration's operand).
                for (int c = 0; c < tcn; ++c) {
                  for (int r = 0; r < p.R; ++r) {
                    pack_row_f64(
                        pack.data() +
                            (static_cast<std::int64_t>(c) * p.R + r) *
                                packw,
                        image + static_cast<std::int64_t>(ct) * p.H * p.W,
                        c, oh * p.str + r - p.pad, wv * p.str - p.pad, p,
                        packw);
                  }
                }
                for (std::int64_t b = 0; b < kbn; ++b) {
                  const std::int64_t kv = (kb0 + b) * vk;
                  const int kn = static_cast<int>(
                      std::min<std::int64_t>(vk, p.K - kv));
                  compute_tile_f64(
                      pack.data(),
                      ftile.data() + b * tcn * f_c_stride, f_c_stride,
                      tcn, p, packw, vw, vk,
                      out_image + (kv * P + oh) * Q + wv,
                      std::int64_t{P} * Q, wn, kn, !first_c);
                }
              }
            }
          }
        }
      });
}

void naive_conv_fp64(const double* input, const double* filter,
                     double* output, const ConvParams& p) {
  const int P = p.P(), Q = p.Q();
  for (int n = 0; n < p.N; ++n)
    for (int k = 0; k < p.K; ++k)
      for (int oj = 0; oj < P; ++oj)
        for (int oi = 0; oi < Q; ++oi) {
          long double sum = 0;
          for (int c = 0; c < p.C; ++c)
            for (int r = 0; r < p.R; ++r) {
              const int ij = p.str * oj + r - p.pad;
              if (ij < 0 || ij >= p.H) continue;
              for (int s = 0; s < p.S; ++s) {
                const int ii = p.str * oi + s - p.pad;
                if (ii < 0 || ii >= p.W) continue;
                sum += static_cast<long double>(
                           input[((std::int64_t{n} * p.C + c) * p.H + ij) *
                                     p.W +
                                 ii]) *
                       filter[((std::int64_t{k} * p.C + c) * p.R + r) *
                                  p.S +
                              s];
              }
            }
          output[((std::int64_t{n} * p.K + k) * P + oj) * Q + oi] =
              static_cast<double>(sum);
        }
}

}  // namespace ndirect
