// Register-block selection for the main micro-kernel (Section 5.2).
//
// The micro-kernel computes a Vw x Vk output tile per iteration of loop
// L9. The paper derives (Vw, Vk) from two pieces:
//
//   Eq. 3 (register budget):  ceil((Vw+S-1)/4) + Vk/4 + Vw*Vk/4 <= 32
//                             and Vk % 4 == 0,
//   Eq. 4 (objective):        FAI = 2*S*Vw*Vk / ((Vw+S-1) + S*Vk),
//
// i.e. input-row registers + one filter register set + accumulators must
// fit the 32 NEON registers, and the flops-per-loaded-element ratio of
// one L9 iteration is maximized. The paper solves this with Lagrange
// multipliers; the integer domain is tiny, so we maximize exactly by
// enumeration (and a test cross-checks against the relaxed continuous
// optimum). For S=3 this yields the paper's Vw=12, Vk=8.
#pragma once

#include <vector>

namespace ndirect {

struct RegisterBlock {
  int vw = 12;  ///< output positions per micro-kernel tile
  int vk = 8;   ///< output channels per micro-kernel tile
};

/// Registers used by a (vw, vk) block for kernel width S (LHS of Eq. 3).
/// `lanes` is the elements-per-vector of the datatype (4 for FP32 on a
/// 128-bit ISA — the paper's setting — 2 for FP64, 8 for FP16 or for
/// FP32 on 256-bit SVE; see Sections 3.3 and 10.1).
int register_cost(int vw, int vk, int S, int lanes = 4);

/// Eq. 4 generalized to any kernel width S (the paper instantiates S=3).
/// FAI counts flops per loaded element, so it is lane-width independent.
double fai_microkernel(int vw, int vk, int S);

/// True iff (vw, vk) satisfies Eq. 3 for kernel width S on an ISA with
/// `regs` vector registers of `lanes` elements, with the additional
/// implementation constraint vw % lanes == 0 (NCHW stores go through
/// lanes x lanes in-register transposes).
bool register_block_feasible(int vw, int vk, int S, int lanes = 4,
                             int regs = 32);

/// All feasible blocks for kernel width S (used by the ablation bench).
std::vector<RegisterBlock> feasible_register_blocks(int S, int lanes = 4,
                                                    int regs = 32);

/// The FAI-maximal feasible block for kernel width S. Ties prefer the
/// larger vk: a taller filter vector amortizes each packed input element
/// over more output channels and halves the number of kv iterations.
/// The defaults give the paper's ARMv8/FP32 instantiation; other
/// (lanes, regs) pairs re-derive the block for FP64/FP16/SVE/AVX-512 as
/// Sections 3.3 and 10.1 describe.
RegisterBlock solve_register_block(int S, int lanes = 4, int regs = 32);

}  // namespace ndirect
