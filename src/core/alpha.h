// The streaming/non-streaming memory latency coefficient alpha
// (Section 6.2). The thread-mapping model weights accesses to the input
// tensor (non-streaming: the packing kernel gathers rows scattered
// across channels) by alpha relative to filter accesses (streaming:
// consecutive addresses). The paper determines alpha offline with a
// microbenchmark; this is that microbenchmark.
#pragma once

#include <cstddef>

namespace ndirect {

struct AlphaResult {
  double alpha = 2.0;          ///< non-streaming / streaming cost ratio
  double streaming_gbps = 0;   ///< measured sequential read bandwidth
  double strided_gbps = 0;     ///< measured strided-gather bandwidth
};

/// Run the microbenchmark (~tens of ms). `bytes` is the working-set size;
/// it should exceed the LLC so both patterns hit memory.
AlphaResult measure_alpha(std::size_t bytes = 64u << 20);

/// Cached alpha for the host: measured once per process, overridable
/// with the NDIRECT_ALPHA environment variable (useful for tests and for
/// modelling the paper's platforms). Clamped to [1, 16].
double host_alpha();

}  // namespace ndirect
