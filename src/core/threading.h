// Thread-mapping model (Section 6, Eq. 5-6).
//
// nDirect parallelizes N, H, W and K but never the reduction dims
// (C, R, S), splitting PT threads into a PTn x PTk grid: PTk groups
// partition the output channels, PTn groups partition the (n, output
// row) space with priority N then H. Per-thread FAI (Eq. 5) is
//
//            1
//   ---------------------------------------
//   PTn*str^2/(N*H*W) + alpha/(K*R*S*PTn)
//
// maximized (per Eq. 6, AM-GM) at PTn* = sqrt(alpha*N*H*W/(K*R*S*str^2)).
// Since PTn must divide PT, we evaluate Eq. 5 on every divisor and keep
// the best; with the model's up-bound rule this reduces to the divisor
// closest to ceil(PTn*).
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/partition.h"
#include "tensor/conv_params.h"

namespace ndirect {

struct ThreadMapping {
  int ptn = 1;  ///< threads across N/H/W
  int ptk = 1;  ///< threads across K

  int total() const { return ptn * ptk; }
};

/// The continuous optimum PTn* of Eq. 6 (before the divisor constraint).
double ptn_continuous(const ConvParams& p, double alpha);

/// Per-thread FAI of Eq. 5 for a candidate PTn.
double thread_fai(const ConvParams& p, double alpha, int ptn);

/// Best split of `threads` for this convolution.
///
/// With `allow_partial` false (the default, and the paper's rule) only
/// exact divisor grids ptn * ptk == threads are evaluated. Prime and
/// awkward thread counts then force degenerate 1xT / Tx1 grids; with
/// `allow_partial` true the solver also evaluates grids with
/// ptn * ptk < threads (ptk clamped to K) and picks them when their
/// Eq. 5 FAI strictly wins — the work-stealing scheduler hands the
/// remainder threads to the grid as pure stealers, so no thread idles.
/// Ties prefer exact grids, then larger PTn (the paper's up-bound rule).
ThreadMapping solve_thread_mapping(const ConvParams& p, double alpha,
                                   int threads, bool allow_partial = false);

/// Work slice of one thread in the PTn x PTk grid: a contiguous range of
/// (n*P + output_row) indices and a contiguous range of K blocks.
struct ThreadSlice {
  Range rows;      ///< indices into the flattened (n, output row) space
  Range k_blocks;  ///< indices into the ceil(K/Vk) K-block space
};

/// Slice for thread `tid` in [0, mapping.total()). Rows are split over
/// PTn in (n-major, row) order, which realizes the paper's N-then-H
/// priority; K blocks are split over PTk.
ThreadSlice thread_slice(const ThreadMapping& mapping, int tid,
                         std::int64_t total_rows, std::int64_t k_blocks);

/// Split `workers` threads among concurrently running branches in
/// proportion to `weights` (per-branch FLOP counts, say). Every branch
/// receives at least one worker; the surplus is apportioned by largest
/// remainder, so the counts sum to max(workers, weights.size()). The
/// graph executor feeds each count to solve_thread_mapping as that
/// branch's seed budget — under the stealing schedule the split only
/// shapes seed locality, since idle workers drain any branch's tiles.
std::vector<int> partition_workers(int workers,
                                   const std::vector<double>& weights);

}  // namespace ndirect
