#include "core/alpha.h"

#include <algorithm>
#include <cstdlib>

#include "runtime/aligned_buffer.h"
#include "runtime/timer.h"

namespace ndirect {
namespace {

// Sequential reduction: the filter-access pattern (unit stride).
double time_streaming(const float* data, std::size_t n, int reps) {
  volatile float sink = 0;
  WallTimer t;
  for (int rep = 0; rep < reps; ++rep) {
    float acc = 0;
    for (std::size_t i = 0; i < n; ++i) acc += data[i];
    sink = sink + acc;
  }
  (void)sink;
  return t.seconds();
}

// Strided gather: the input-access pattern of the packing micro-kernel,
// which hops across channel planes (stride H*W elements). 1009 floats is
// prime, so successive touches land on different lines/pages and defeat
// both the adjacent-line and stream prefetchers.
double time_strided(const float* data, std::size_t n, int reps) {
  constexpr std::size_t kStride = 1009;
  volatile float sink = 0;
  WallTimer t;
  for (int rep = 0; rep < reps; ++rep) {
    float acc = 0;
    std::size_t idx = static_cast<std::size_t>(rep);
    for (std::size_t i = 0; i < n; ++i) {
      acc += data[idx];
      idx += kStride;
      if (idx >= n) idx -= n;
    }
    sink = sink + acc;
  }
  (void)sink;
  return t.seconds();
}

}  // namespace

AlphaResult measure_alpha(std::size_t bytes) {
  const std::size_t n = bytes / sizeof(float);
  AlignedBuffer<float> buf(n);
  for (std::size_t i = 0; i < n; ++i) {
    buf[i] = static_cast<float>(i & 0xFF) * 0.001f;
  }

  // One warm-up pass each, then measure.
  (void)time_streaming(buf.data(), n, 1);
  const double ts = time_streaming(buf.data(), n, 2) / 2;
  (void)time_strided(buf.data(), n, 1);
  const double tn = time_strided(buf.data(), n, 2) / 2;

  AlphaResult r;
  const double gb = static_cast<double>(n) * sizeof(float) / 1e9;
  r.streaming_gbps = ts > 0 ? gb / ts : 0;
  r.strided_gbps = tn > 0 ? gb / tn : 0;
  r.alpha = ts > 0 ? std::clamp(tn / ts, 1.0, 16.0) : 2.0;
  return r;
}

double host_alpha() {
  static const double alpha = [] {
    if (const char* env = std::getenv("NDIRECT_ALPHA")) {
      const double v = std::strtod(env, nullptr);
      if (v >= 1.0 && v <= 16.0) return v;
    }
    // A modest working set keeps the one-off probe fast; it still
    // exceeds every L2 in Table 3.
    return measure_alpha(16u << 20).alpha;
  }();
  return alpha;
}

}  // namespace ndirect
