// Policy-driven micro-kernel generator (internal header).
//
// A *policy* is the compile-time tuple (Vw, Vkv, S, stride, tail-mode).
// policy_compute_kernel / policy_fused_kernel expand the fully-unrolled
// Algorithm 3 body for one policy — the input window preloaded into
// ceil(packw/4) vector registers, every (w, s) tap a lane-indexed FMA —
// and finish with either the branch-free interior store or the masked
// partial-lane edge store. build_policy_table<S>() folds over the whole
// (Vw, Vk) grid at compile time, keeping exactly the blocks that satisfy
// the Eq. 3 register budget, and emits a constexpr KernelEntry table.
// The table for each S lives in its own translation unit
// (microkernel_policies_s{1,3,5,7}.cpp) so the instantiations compile in
// parallel; microkernel.cpp aggregates the four spans into the public
// kernel_registry().
//
// To add a new kernel width S' to the registry: add a
// microkernel_policies_sS'.cpp defining policy_entries_sS'() from
// build_policy_table<S'>(), list it in src/core/CMakeLists.txt, and
// append the span in kernel_registry() — no per-block code is written.
#pragma once

#include <array>
#include <cstring>
#include <utility>

#include "core/microkernel.h"
#include "simd/vec128.h"

// A policy TU instantiates ~56 fully-unrolled kernels, which overflows
// GCC's per-TU inline-growth budget: without forcing the issue, the
// compiler leaves cr_compute_unrolled and the store helpers out of
// line, and the accumulator tile lives in memory instead of registers
// (measured ~30% throughput loss on the 12x8 S=3 block). The kernels
// ARE the product here — size-vs-speed heuristics do not apply — so
// the hot helpers are always_inline and the kernel roots flatten their
// whole call tree (GCC ignores inline limits when flattening).
#if defined(__GNUC__) || defined(__clang__)
#define NDIRECT_ALWAYS_INLINE inline __attribute__((always_inline))
#define NDIRECT_FLATTEN __attribute__((flatten))
#else
#define NDIRECT_ALWAYS_INLINE inline
#define NDIRECT_FLATTEN
#endif

namespace ndirect {
namespace detail {

// Gather one (c, ih) input row segment of `packw` elements into `dst`,
// zero-filling where the window hangs over the (padded) border. The
// segment is contiguous in the input row for any stride, because the
// micro-kernel indexes the buffer as brow[w*str + s].
NDIRECT_ALWAYS_INLINE void pack_row(float* dst, const PackGeometry& g,
                                    int c, int ih, int packw) {
  if (ih < 0 || ih >= g.H) {
    std::memset(dst, 0, sizeof(float) * static_cast<std::size_t>(packw));
    return;
  }
  const float* row = g.src + c * g.chan_stride +
                     static_cast<std::int64_t>(ih) * g.row_stride;
  int t = 0;
  while (t < packw && g.iw0 + t * g.iw_step < 0) dst[t++] = 0.0f;
  int t_hi = packw;
  while (t_hi > t && g.iw0 + (t_hi - 1) * g.iw_step >= g.W) --t_hi;
  if (g.col_stride == 1 && g.iw_step == 1) {
    if (t_hi > t) {
      std::memcpy(dst + t, row + g.iw0 + t,
                  sizeof(float) * static_cast<std::size_t>(t_hi - t));
    }
  } else {
    for (int u = t; u < t_hi; ++u) {
      dst[u] = row[(g.iw0 + u * g.iw_step) * g.col_stride];
    }
  }
  for (int u = t_hi; u < packw; ++u) dst[u] = 0.0f;
}

// ---------------------------------------------------------------------------
// Tile stores
// ---------------------------------------------------------------------------

// Branch-free full-tile store: requires wn == VW and kn == VK. NCHW uses
// 4x4 in-register transposes to turn the K-vectorized accumulators into
// W-contiguous stores; NHWC stores the accumulators directly.
template <int VW, int VKV>
NDIRECT_ALWAYS_INLINE void store_tile_interior(const MicroArgs& a,
                                               vec128f (&acc)[VW][VKV]) {
  const vec128f zero = vzero();
  if (a.out_w_stride == 1) {  // NCHW
    for (int j = 0; j < VKV; ++j) {
      for (int w0 = 0; w0 < VW; w0 += 4) {
        vec128f r0 = acc[w0 + 0][j], r1 = acc[w0 + 1][j],
                r2 = acc[w0 + 2][j], r3 = acc[w0 + 3][j];
        vtranspose4x4(r0, r1, r2, r3);
        float* o0 = a.out + (4 * j + 0) * a.out_k_stride + w0;
        float* o1 = a.out + (4 * j + 1) * a.out_k_stride + w0;
        float* o2 = a.out + (4 * j + 2) * a.out_k_stride + w0;
        float* o3 = a.out + (4 * j + 3) * a.out_k_stride + w0;
        if (a.accumulate) {
          r0 = vadd(r0, vload(o0));
          r1 = vadd(r1, vload(o1));
          r2 = vadd(r2, vload(o2));
          r3 = vadd(r3, vload(o3));
        }
        if (a.bias != nullptr) {
          // After the transpose each row holds one output channel.
          r0 = vadd(r0, vdup(a.bias[4 * j + 0]));
          r1 = vadd(r1, vdup(a.bias[4 * j + 1]));
          r2 = vadd(r2, vdup(a.bias[4 * j + 2]));
          r3 = vadd(r3, vdup(a.bias[4 * j + 3]));
        }
        if (a.relu) {
          r0 = vmax(r0, zero);
          r1 = vmax(r1, zero);
          r2 = vmax(r2, zero);
          r3 = vmax(r3, zero);
        }
        vstore(o0, r0);
        vstore(o1, r1);
        vstore(o2, r2);
        vstore(o3, r3);
      }
    }
  } else {  // NHWC: K is contiguous (out_k_stride == 1)
    for (int w = 0; w < VW; ++w) {
      float* o = a.out + w * a.out_w_stride;
      for (int j = 0; j < VKV; ++j) {
        vec128f v = acc[w][j];
        if (a.accumulate) v = vadd(v, vload(o + 4 * j));
        if (a.bias != nullptr) v = vadd(v, vload(a.bias + 4 * j));
        if (a.relu) v = vmax(v, zero);
        vstore(o + 4 * j, v);
      }
    }
  }
}

// Masked edge store: any wn <= VW, kn <= VK (including kn % 4 != 0).
// Same transpose/direct structure as the interior store, but every
// boundary group goes through partial-lane loads/stores, so ragged tile
// borders stay vectorized — no scalar spill-and-copy.
template <int VW, int VKV>
NDIRECT_ALWAYS_INLINE void store_tile_edge(const MicroArgs& a,
                                           vec128f (&acc)[VW][VKV]) {
  const vec128f zero = vzero();
  if (a.out_w_stride == 1) {  // NCHW
    for (int k0 = 0; k0 < a.kn; k0 += 4) {
      const int j = k0 / 4;
      const int kg = a.kn - k0 < 4 ? a.kn - k0 : 4;
      for (int w0 = 0; w0 < a.wn; w0 += 4) {
        const int wg = a.wn - w0 < 4 ? a.wn - w0 : 4;
        // Accumulator lanes past wn/kn hold finite garbage; the
        // transpose carries them along and the masked stores drop them.
        vec128f r[4] = {acc[w0 + 0][j], acc[w0 + 1][j], acc[w0 + 2][j],
                        acc[w0 + 3][j]};
        vtranspose4x4(r[0], r[1], r[2], r[3]);
        for (int kk = 0; kk < kg; ++kk) {
          float* o = a.out + (k0 + kk) * a.out_k_stride + w0;
          vec128f v = r[kk];
          if (a.accumulate) v = vadd(v, vload_lanes(o, wg));
          if (a.bias != nullptr) v = vadd(v, vdup(a.bias[k0 + kk]));
          if (a.relu) v = vmax(v, zero);
          vstore_lanes(o, v, wg);
        }
      }
    }
  } else {  // NHWC
    for (int w = 0; w < a.wn; ++w) {
      float* o = a.out + w * a.out_w_stride;
      for (int k0 = 0; k0 < a.kn; k0 += 4) {
        const int kg = a.kn - k0 < 4 ? a.kn - k0 : 4;
        vec128f v = acc[w][k0 / 4];
        if (a.accumulate) v = vadd(v, vload_lanes(o + k0, kg));
        if (a.bias != nullptr) v = vadd(v, vload_lanes(a.bias + k0, kg));
        if (a.relu) v = vmax(v, zero);
        vstore_lanes(o + k0, v, kg);
      }
    }
  }
}

template <int VW, int VKV, TailMode TM>
NDIRECT_ALWAYS_INLINE void store_policy(const MicroArgs& a,
                                        vec128f (&acc)[VW][VKV]) {
  if constexpr (TM == TailMode::kInterior) {
    store_tile_interior<VW, VKV>(a, acc);
  } else {
    store_tile_edge<VW, VKV>(a, acc);
  }
}

// ---------------------------------------------------------------------------
// Unrolled Algorithm 3 body
// ---------------------------------------------------------------------------

// One lane-indexed FMA tap: acc[j] += x[I/4][lane I%4] * f[j]. I is the
// compile-time index of the input element (w*STR + s) within the
// preloaded window registers.
template <int I, int XV, int VKV>
NDIRECT_ALWAYS_INLINE void lane_fma_tap(vec128f (&acc)[VKV],
                                        const vec128f (&x)[XV],
                                        const vec128f (&f)[VKV]) {
  static_assert(I / 4 < XV);
  for (int j = 0; j < VKV; ++j) {
    acc[j] = vfma_lane<I % 4>(acc[j], x[I / 4], f[j]);
  }
}

// Process one (c, r) row pair: preload the packed input row into XV
// vector registers, then for each kernel tap s (unrolled) load the Vk
// filter vector and update all VW accumulators via lane FMAs.
template <int VW, int VKV, int S, int STR>
NDIRECT_ALWAYS_INLINE void cr_compute_unrolled(vec128f (&acc)[VW][VKV],
                                               const float* brow,
                                               const float* frow) {
  constexpr int VK = VKV * 4;
  constexpr int PACKW = (VW - 1) * STR + S;
  constexpr int XV = (PACKW + 3) / 4;
  vec128f x[XV];
  for (int t = 0; t < XV; ++t) x[t] = vload(brow + 4 * t);

  [&]<int... Ss>(std::integer_sequence<int, Ss...>) {
    (([&] {
       constexpr int s = Ss;
       vec128f f[VKV];
       for (int j = 0; j < VKV; ++j) f[j] = vload(frow + s * VK + 4 * j);
       [&]<int... Ws>(std::integer_sequence<int, Ws...>) {
         (lane_fma_tap<Ws * STR + s, XV, VKV>(acc[Ws], x, f), ...);
       }(std::make_integer_sequence<int, VW>{});
     }()),
     ...);
  }(std::make_integer_sequence<int, S>{});
}

// ---------------------------------------------------------------------------
// The generator: one template, every policy
// ---------------------------------------------------------------------------

template <int VW, int VKV, int S, int STR, TailMode TM>
NDIRECT_FLATTEN void policy_compute_kernel(const MicroArgs& a) {
  vec128f acc[VW][VKV];
  for (int w = 0; w < VW; ++w) {
    for (int j = 0; j < VKV; ++j) acc[w][j] = vzero();
  }
  for (int c = 0; c < a.tc; ++c) {
    const float* brows = a.pack + c * a.pack_c_stride;
    const float* fc = a.ftile + c * a.f_c_stride;
    for (int r = 0; r < a.R; ++r) {
      cr_compute_unrolled<VW, VKV, S, STR>(
          acc, brows + r * a.pack_r_stride,
          fc + static_cast<std::int64_t>(r) * S * VKV * 4);
    }
  }
  store_policy<VW, VKV, TM>(a, acc);
}

// Fused packing + compute (Section 5.3): every gathered row is stored to
// the pack buffer and consumed by FMAs in the same pass, so packing
// stores retire behind the FMAs and later kv iterations find the whole
// window L1-resident.
template <int VW, int VKV, int S, int STR, TailMode TM>
NDIRECT_FLATTEN void policy_fused_kernel(const MicroArgs& a,
                                         const PackGeometry& g) {
  vec128f acc[VW][VKV];
  for (int w = 0; w < VW; ++w) {
    for (int j = 0; j < VKV; ++j) acc[w][j] = vzero();
  }
  for (int c = 0; c < a.tc; ++c) {
    float* brows = a.pack + c * a.pack_c_stride;
    const float* fc = a.ftile + c * a.f_c_stride;
    for (int r = 0; r < a.R; ++r) {
      float* brow = brows + r * a.pack_r_stride;
      pack_row(brow, g, c, g.ih0 + r, a.packw);
      cr_compute_unrolled<VW, VKV, S, STR>(
          acc, brow, fc + static_cast<std::int64_t>(r) * S * VKV * 4);
    }
  }
  store_policy<VW, VKV, TM>(a, acc);
}

// ---------------------------------------------------------------------------
// Constexpr registry builder
// ---------------------------------------------------------------------------

/// Eq. 3-feasible (vw, vk) blocks for kernel width S.
constexpr int policy_block_count(int S) {
  int n = 0;
  for (int vw = 4; vw <= kMaxVw; vw += 4) {
    for (int vk = 4; vk <= kMaxVk; vk += 4) {
      if (kernel_block_feasible(vw, vk, S)) ++n;
    }
  }
  return n;
}

// One nested generic lambda per pack level trips a GCC pack-expansion
// limitation, so each level of the (vw, vk, str) fold is a named helper.
template <int S, int VW, int VK, TailMode TM, int STR, typename Table>
constexpr void emit_policy(Table& table, std::size_t& i) {
  table[i++] =
      KernelEntry{VW, VK, S, STR, TM,
                  &policy_compute_kernel<VW, VK / 4, S, STR, TM>,
                  &policy_fused_kernel<VW, VK / 4, S, STR, TM>};
}

template <int S, int VW, int VK, typename Table>
constexpr void emit_block(Table& table, std::size_t& i) {
  if constexpr (kernel_block_feasible(VW, VK, S)) {
    emit_policy<S, VW, VK, TailMode::kInterior, 1>(table, i);
    emit_policy<S, VW, VK, TailMode::kEdge, 1>(table, i);
    emit_policy<S, VW, VK, TailMode::kInterior, 2>(table, i);
    emit_policy<S, VW, VK, TailMode::kEdge, 2>(table, i);
  }
}

template <int S, int VW, typename Table>
constexpr void emit_block_row(Table& table, std::size_t& i) {
  [&]<int... Ks>(std::integer_sequence<int, Ks...>) {
    (emit_block<S, VW, (Ks + 1) * 4>(table, i), ...);
  }(std::make_integer_sequence<int, kMaxVk / 4>{});
}

/// Entries for one S: feasible blocks x strides {1, 2} x {interior, edge}.
template <int S>
constexpr auto build_policy_table() {
  std::array<KernelEntry, static_cast<std::size_t>(policy_block_count(S)) * 4>
      table{};
  std::size_t i = 0;
  [&]<int... Ws>(std::integer_sequence<int, Ws...>) {
    (emit_block_row<S, (Ws + 1) * 4>(table, i), ...);
  }(std::make_integer_sequence<int, kMaxVw / 4>{});
  return table;
}

/// Non-owning view of one translation unit's constexpr entry table.
struct PolicySpan {
  const KernelEntry* data = nullptr;
  std::size_t size = 0;
};

// Defined in microkernel_policies_s{1,3,5,7}.cpp.
PolicySpan policy_entries_s1();
PolicySpan policy_entries_s3();
PolicySpan policy_entries_s5();
PolicySpan policy_entries_s7();

}  // namespace detail
}  // namespace ndirect
