// Int8 kernel registry aggregation, once-per-conv resolution, backend
// selection, and the scalar reference kernel.
#include "core/quantized_microkernel.h"

#include <algorithm>

#include "runtime/cpu_info.h"
#include "runtime/env.h"

namespace ndirect {

const char* int8_backend_name(Int8Backend b) {
  switch (b) {
    case Int8Backend::kScalar: return "scalar";
    case Int8Backend::kEmulated: return "emulated";
    case Int8Backend::kDot: return "dot";
  }
  return "?";
}

Int8Backend int8_preferred_backend() {
  // The env override is read per call (tests flip it); the hardware
  // probe is immutable for the process lifetime.
  if (env_flag("NDIRECT_FORCE_NO_DOTPROD")) return Int8Backend::kEmulated;
#if NDIRECT_INT8_DOT_COMPILED
  static const bool host_dotprod = probe_host_cpu().asimddp;
  if (host_dotprod) return Int8Backend::kDot;
#endif
  return Int8Backend::kEmulated;
}

const std::vector<I8KernelEntry>& int8_kernel_registry() {
  static const std::vector<I8KernelEntry> registry = [] {
    std::vector<I8KernelEntry> all;
    for (const detail::I8PolicySpan span :
         {detail::i8_policy_entries_s1(), detail::i8_policy_entries_s3(),
          detail::i8_policy_entries_s5(),
          detail::i8_policy_entries_s7()}) {
      all.insert(all.end(), span.data, span.data + span.size);
    }
    return all;
  }();
  return registry;
}

const std::vector<RegisterBlock>& int8_microkernel_blocks() {
  static const std::vector<RegisterBlock> blocks = [] {
    std::vector<RegisterBlock> out;
    for (const I8KernelEntry& e : int8_kernel_registry()) {
      const bool seen =
          std::any_of(out.begin(), out.end(), [&](const RegisterBlock& b) {
            return b.vw == e.vw && b.vk == e.vk;
          });
      if (!seen) out.push_back(RegisterBlock{e.vw, e.vk});
    }
    return out;
  }();
  return blocks;
}

I8KernelResolution resolve_int8_kernel(int vw, int vk, int S, int str,
                                       Int8Backend preferred) {
  I8KernelResolution res;
  if (preferred == Int8Backend::kScalar) {
    res.reason = "scalar backend requested";
    return res;
  }
  Int8Backend want = preferred;
  if (want == Int8Backend::kDot && !NDIRECT_INT8_DOT_COMPILED) {
    want = Int8Backend::kEmulated;
    res.reason = "no +dotprod compile target; emulated";
  }
  auto find = [&](Int8Backend b) -> const I8KernelEntry* {
    for (const I8KernelEntry& e : int8_kernel_registry()) {
      if (e.vw == vw && e.vk == vk && e.S == S && e.str == str &&
          e.backend == b) {
        return &e;
      }
    }
    return nullptr;
  };
  if (const I8KernelEntry* e = find(want)) {
    res.fn = e->fn;
    res.backend = e->backend;
    return res;
  }
  if (S != 1 && S != 3 && S != 5 && S != 7) {
    res.reason = "kernel width S outside {1,3,5,7}";
  } else if (str > 2) {
    res.reason = "stride > 2";
  } else if (!kernel_block_feasible(vw, vk, S)) {
    res.reason = "block outside the Eq. 3 grid";
  } else {
    res.reason = "policy not instantiated";
  }
  return res;
}

void int8_kernel_generic(const I8MicroArgs& a, int vw, int vk) {
  for (int k = 0; k < vk; ++k) {
    for (int w = 0; w < vw; ++w) a.acc[k * vw + w] = 0;
  }
  for (int c = 0; c < a.c4; ++c) {
    const std::int8_t* brows = a.pack + c * a.pack_c4_stride;
    const std::int8_t* fc = a.ftile + c * a.f_c4_stride;
    for (int r = 0; r < a.R; ++r) {
      const std::int8_t* brow = brows + r * a.pack_r_stride;
      const std::int8_t* frow =
          fc + static_cast<std::int64_t>(r) * a.S * vk * 4;
      for (int s = 0; s < a.S; ++s) {
        const std::int8_t* fv = frow + s * vk * 4;
        for (int w = 0; w < vw; ++w) {
          const std::int8_t* group = brow + (w * a.str + s) * 4;
          for (int k = 0; k < vk; ++k) {
            std::int32_t dot = 0;
            for (int j = 0; j < 4; ++j) {
              dot += static_cast<std::int32_t>(group[j]) *
                     static_cast<std::int32_t>(fv[k * 4 + j]);
            }
            a.acc[k * vw + w] += dot;
          }
        }
      }
    }
  }
}

}  // namespace ndirect
