// Policy registry slice for kernel width S = 3 (the paper's headline
// case: ResNet/VGG 3x3 layers, Table 4's Vw=12, Vk=8 block).
#include "core/microkernel_generator.h"

namespace ndirect {
namespace detail {
namespace {
constexpr auto kTable = build_policy_table<3>();
}  // namespace

PolicySpan policy_entries_s3() { return {kTable.data(), kTable.size()}; }

}  // namespace detail
}  // namespace ndirect
