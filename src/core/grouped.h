// Grouped convolution (the generalization between the paper's standard
// convolution and its Section 10.2 depthwise case).
//
// With G groups, input channels and output channels split into G
// independent slices: group g convolves input channels
// [g*C/G, (g+1)*C/G) with its K/G filters. In NCHW the per-image group
// slices are contiguous, so each (image, group) pair is a standard
// nDirect convolution executed in place via run_into() — no data
// movement is introduced. groups == 1 is the standard convolution;
// groups == C with K == C is depthwise.
#pragma once

#include "core/ndirect.h"

namespace ndirect {

/// input NCHW [N,C,H,W], filter [K, C/groups, R, S] (KCRS layout),
/// output NCHW [N,K,P,Q]. C and K must be divisible by `groups`.
/// Throws std::invalid_argument on malformed group structure.
Tensor grouped_conv_nchw(const Tensor& input, const Tensor& filter,
                         const ConvParams& p, int groups,
                         const NdirectOptions& options = {});

/// Naive reference for tests (double accumulation).
Tensor grouped_conv_reference(const Tensor& input, const Tensor& filter,
                              const ConvParams& p, int groups);

}  // namespace ndirect
