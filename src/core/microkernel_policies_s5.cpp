// Policy registry slice for kernel width S = 5 (Inception-style 5x5
// layers and the 5-tap rows of larger stem kernels).
#include "core/microkernel_generator.h"

namespace ndirect {
namespace detail {
namespace {
constexpr auto kTable = build_policy_table<5>();
}  // namespace

PolicySpan policy_entries_s5() { return {kTable.data(), kTable.size()}; }

}  // namespace detail
}  // namespace ndirect
