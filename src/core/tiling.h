// Cache-tiling solver (Section 4.2, Eq. 1-2).
//
// Loop L3/L4 tile the filter and input so that
//   Eq. 1 (L1 data cache): one R x Tc x (Vw+S-1) input slice plus two
//          Vk x Tc x R x S filter slices stay L1-resident across loop L7;
//   Eq. 2 (L2 cache): one Tk x Tc x R x S filter block plus two input
//          slices stay L2-resident across loop L6 (with headroom for
//          instructions and output elements, which share the L2 on ARM);
//   L3 cache (when present) bounds Th, the output-row block of loop L2.
// Sizes are in FP32 elements; solving each inequality for the single
// unknown gives Tc, then Tk, then Th.
#pragma once

#include "core/fai.h"
#include "runtime/cpu_info.h"
#include "tensor/conv_params.h"

namespace ndirect {

struct TilingPlan {
  int tc = 1;  ///< input-channel tile (loop L3)
  int tk = 8;  ///< output-channel tile (loop L4), multiple of Vk
  int th = 1;  ///< output-row tile (loop L2)

  bool satisfies_l1(const CacheInfo& cache, const RegisterBlock& rb,
                    int R, int S) const;
  bool satisfies_l2(const CacheInfo& cache, const RegisterBlock& rb,
                    int R, int S) const;
};

/// Fraction of L2 left for the filter block + input slices; the rest is
/// headroom for instructions and the output tile (Section 4.2).
inline constexpr double kL2Headroom = 0.75;

TilingPlan solve_tiling(const CacheInfo& cache, const RegisterBlock& rb,
                        const ConvParams& p);

}  // namespace ndirect
