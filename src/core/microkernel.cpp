#include "core/microkernel.h"

#include <cstring>
#include <utility>

#include "simd/vec128.h"

namespace ndirect {
namespace {

// Gather one (c, ih) input row segment of `packw` elements into `dst`,
// zero-filling where the window hangs over the (padded) border. The
// segment is contiguous in the input row for any stride, because the
// micro-kernel indexes the buffer as brow[w*str + s].
inline void pack_row(float* dst, const PackGeometry& g, int c, int ih,
                     int packw) {
  if (ih < 0 || ih >= g.H) {
    std::memset(dst, 0, sizeof(float) * static_cast<std::size_t>(packw));
    return;
  }
  const float* row = g.src + c * g.chan_stride +
                     static_cast<std::int64_t>(ih) * g.row_stride;
  int t = 0;
  while (t < packw && g.iw0 + t * g.iw_step < 0) dst[t++] = 0.0f;
  int t_hi = packw;
  while (t_hi > t && g.iw0 + (t_hi - 1) * g.iw_step >= g.W) --t_hi;
  if (g.col_stride == 1 && g.iw_step == 1) {
    if (t_hi > t) {
      std::memcpy(dst + t, row + g.iw0 + t,
                  sizeof(float) * static_cast<std::size_t>(t_hi - t));
    }
  } else {
    for (int u = t; u < t_hi; ++u) {
      dst[u] = row[(g.iw0 + u * g.iw_step) * g.col_stride];
    }
  }
  for (int u = t_hi; u < packw; ++u) dst[u] = 0.0f;
}

// Write a vw x vk accumulator tile to the output tensor. The fast paths
// need wn == vw and kn == vk; NCHW uses 4x4 in-register transposes to
// turn the K-vectorized accumulators into W-contiguous stores.
template <int VW, int VKV>
inline void store_tile(const MicroArgs& a, vec128f acc[VW][VKV]) {
  constexpr int VK = VKV * 4;
  const vec128f zero = vzero();
  if (a.wn == VW && a.kn == VK) {
    if (a.out_w_stride == 1) {  // NCHW
      for (int j = 0; j < VKV; ++j) {
        for (int w0 = 0; w0 < VW; w0 += 4) {
          vec128f r0 = acc[w0 + 0][j], r1 = acc[w0 + 1][j],
                  r2 = acc[w0 + 2][j], r3 = acc[w0 + 3][j];
          vtranspose4x4(r0, r1, r2, r3);
          float* o0 = a.out + (4 * j + 0) * a.out_k_stride + w0;
          float* o1 = a.out + (4 * j + 1) * a.out_k_stride + w0;
          float* o2 = a.out + (4 * j + 2) * a.out_k_stride + w0;
          float* o3 = a.out + (4 * j + 3) * a.out_k_stride + w0;
          if (a.accumulate) {
            r0 = vadd(r0, vload(o0));
            r1 = vadd(r1, vload(o1));
            r2 = vadd(r2, vload(o2));
            r3 = vadd(r3, vload(o3));
          }
          if (a.bias != nullptr) {
            // After the transpose each row holds one output channel.
            r0 = vadd(r0, vdup(a.bias[4 * j + 0]));
            r1 = vadd(r1, vdup(a.bias[4 * j + 1]));
            r2 = vadd(r2, vdup(a.bias[4 * j + 2]));
            r3 = vadd(r3, vdup(a.bias[4 * j + 3]));
          }
          if (a.relu) {
            r0 = vmax(r0, zero);
            r1 = vmax(r1, zero);
            r2 = vmax(r2, zero);
            r3 = vmax(r3, zero);
          }
          vstore(o0, r0);
          vstore(o1, r1);
          vstore(o2, r2);
          vstore(o3, r3);
        }
      }
    } else {  // NHWC: K is contiguous (out_k_stride == 1)
      for (int w = 0; w < VW; ++w) {
        float* o = a.out + w * a.out_w_stride;
        for (int j = 0; j < VKV; ++j) {
          vec128f v = acc[w][j];
          if (a.accumulate) v = vadd(v, vload(o + 4 * j));
          if (a.bias != nullptr) v = vadd(v, vload(a.bias + 4 * j));
          if (a.relu) v = vmax(v, zero);
          vstore(o + 4 * j, v);
        }
      }
    }
    return;
  }
  // Ragged tile: dump to a local array, then scalar-copy the valid part.
  float tile[VW][VK];
  for (int w = 0; w < VW; ++w) {
    for (int j = 0; j < VKV; ++j) vstore(&tile[w][4 * j], acc[w][j]);
  }
  for (int w = 0; w < a.wn; ++w) {
    for (int k = 0; k < a.kn; ++k) {
      float* o = a.out + k * a.out_k_stride + w * a.out_w_stride;
      float v = a.accumulate ? *o + tile[w][k] : tile[w][k];
      if (a.bias != nullptr) v += a.bias[k];
      if (a.relu && v < 0.0f) v = 0.0f;
      *o = v;
    }
  }
}

template <int VW, int VKV>
void compute_kernel(const MicroArgs& a) {
  constexpr int VK = VKV * 4;
  vec128f acc[VW][VKV];
  for (int w = 0; w < VW; ++w) {
    for (int j = 0; j < VKV; ++j) acc[w][j] = vzero();
  }
  for (int c = 0; c < a.tc; ++c) {
    const float* brows = a.pack + c * a.pack_c_stride;
    const float* fc = a.ftile + c * a.f_c_stride;
    for (int r = 0; r < a.R; ++r) {
      const float* brow = brows + r * a.pack_r_stride;
      const float* frow = fc + static_cast<std::int64_t>(r) * a.S * VK;
      for (int s = 0; s < a.S; ++s) {
        vec128f f[VKV];
        for (int j = 0; j < VKV; ++j) f[j] = vload(frow + s * VK + 4 * j);
        const float* b = brow + s;
        for (int w = 0; w < VW; ++w) {
          const vec128f x = vdup(b[w * a.str]);
          for (int j = 0; j < VKV; ++j) acc[w][j] = vfma(acc[w][j], x, f[j]);
        }
      }
    }
  }
  store_tile<VW, VKV>(a, acc);
}

// Fused packing + first-kv compute (Section 5.3): every gathered row is
// stored to the pack buffer and consumed by FMAs in the same pass, so
// packing stores retire behind the FMAs (the paper's "st immediately
// after FMA" arrangement, realized at row granularity) and loops L7 > 0
// find the whole window L1-resident.
template <int VW, int VKV>
void fused_kernel(const MicroArgs& a, const PackGeometry& g) {
  constexpr int VK = VKV * 4;
  vec128f acc[VW][VKV];
  for (int w = 0; w < VW; ++w) {
    for (int j = 0; j < VKV; ++j) acc[w][j] = vzero();
  }
  for (int c = 0; c < a.tc; ++c) {
    float* brows = a.pack + c * a.pack_c_stride;
    const float* fc = a.ftile + c * a.f_c_stride;
    for (int r = 0; r < a.R; ++r) {
      float* brow = brows + r * a.pack_r_stride;
      pack_row(brow, g, c, g.ih0 + r, a.packw);
      const float* frow = fc + static_cast<std::int64_t>(r) * a.S * VK;
      for (int s = 0; s < a.S; ++s) {
        vec128f f[VKV];
        for (int j = 0; j < VKV; ++j) f[j] = vload(frow + s * VK + 4 * j);
        const float* b = brow + s;
        for (int w = 0; w < VW; ++w) {
          const vec128f x = vdup(b[w * a.str]);
          for (int j = 0; j < VKV; ++j) acc[w][j] = vfma(acc[w][j], x, f[j]);
        }
      }
    }
  }
  store_tile<VW, VKV>(a, acc);
}

// ---------------------------------------------------------------------------
// Fully unrolled Algorithm 3 kernel
// ---------------------------------------------------------------------------

// One lane-indexed FMA tap: acc[j] += x[I/4][lane I%4] * f[j]. I is the
// compile-time index of the input element (w*STR + s) within the
// preloaded window registers.
template <int I, int XV, int VKV>
inline void lane_fma_tap(vec128f (&acc)[VKV], const vec128f (&x)[XV],
                         const vec128f (&f)[VKV]) {
  static_assert(I / 4 < XV);
  for (int j = 0; j < VKV; ++j) {
    acc[j] = vfma_lane<I % 4>(acc[j], x[I / 4], f[j]);
  }
}

// Process one (c, r) row pair: preload the packed input row into XV
// vector registers, then for each kernel tap s (unrolled) load the Vk
// filter vector and update all VW accumulators via lane FMAs.
template <int VW, int VKV, int S, int STR>
inline void cr_compute_unrolled(vec128f (&acc)[VW][VKV], const float* brow,
                                const float* frow) {
  constexpr int VK = VKV * 4;
  constexpr int PACKW = (VW - 1) * STR + S;
  constexpr int XV = (PACKW + 3) / 4;
  vec128f x[XV];
  for (int t = 0; t < XV; ++t) x[t] = vload(brow + 4 * t);

  [&]<int... Ss>(std::integer_sequence<int, Ss...>) {
    (([&] {
       constexpr int s = Ss;
       vec128f f[VKV];
       for (int j = 0; j < VKV; ++j) f[j] = vload(frow + s * VK + 4 * j);
       [&]<int... Ws>(std::integer_sequence<int, Ws...>) {
         (lane_fma_tap<Ws * STR + s, XV, VKV>(acc[Ws], x, f), ...);
       }(std::make_integer_sequence<int, VW>{});
     }()),
     ...);
  }(std::make_integer_sequence<int, S>{});
}

template <int VW, int VKV, int S, int STR>
void compute_kernel_unrolled(const MicroArgs& a) {
  vec128f acc[VW][VKV];
  for (int w = 0; w < VW; ++w) {
    for (int j = 0; j < VKV; ++j) acc[w][j] = vzero();
  }
  for (int c = 0; c < a.tc; ++c) {
    const float* brows = a.pack + c * a.pack_c_stride;
    const float* fc = a.ftile + c * a.f_c_stride;
    for (int r = 0; r < a.R; ++r) {
      cr_compute_unrolled<VW, VKV, S, STR>(
          acc, brows + r * a.pack_r_stride,
          fc + static_cast<std::int64_t>(r) * S * VKV * 4);
    }
  }
  store_tile<VW, VKV>(a, acc);
}

}  // namespace

void pack_window(float* pack, const PackGeometry& geom, int tc, int R,
                 int packw) {
  for (int c = 0; c < tc; ++c) {
    for (int r = 0; r < R; ++r) {
      pack_row(pack + (static_cast<std::int64_t>(c) * R + r) * packw, geom,
               c, geom.ih0 + r, packw);
    }
  }
}

void compute_kernel_generic(const MicroArgs& a, int vw, int vk) {
  const int vkv = vk / 4;
  vec128f acc[kMaxVw][kMaxVk / 4];
  for (int w = 0; w < vw; ++w) {
    for (int j = 0; j < vkv; ++j) acc[w][j] = vzero();
  }
  for (int c = 0; c < a.tc; ++c) {
    const float* brows = a.pack + c * a.pack_c_stride;
    const float* fc = a.ftile + c * a.f_c_stride;
    for (int r = 0; r < a.R; ++r) {
      const float* brow = brows + r * a.pack_r_stride;
      const float* frow = fc + static_cast<std::int64_t>(r) * a.S * vk;
      for (int s = 0; s < a.S; ++s) {
        vec128f f[kMaxVk / 4];
        for (int j = 0; j < vkv; ++j) f[j] = vload(frow + s * vk + 4 * j);
        const float* b = brow + s;
        for (int w = 0; w < vw; ++w) {
          const vec128f x = vdup(b[w * a.str]);
          for (int j = 0; j < vkv; ++j) acc[w][j] = vfma(acc[w][j], x, f[j]);
        }
      }
    }
  }
  // Store via the scalar path of store_tile by reusing its ragged logic.
  float tile[kMaxVw][kMaxVk];
  for (int w = 0; w < vw; ++w) {
    for (int j = 0; j < vkv; ++j) vstore(&tile[w][4 * j], acc[w][j]);
  }
  for (int w = 0; w < a.wn; ++w) {
    for (int k = 0; k < a.kn; ++k) {
      float* o = a.out + k * a.out_k_stride + w * a.out_w_stride;
      float v = a.accumulate ? *o + tile[w][k] : tile[w][k];
      if (a.bias != nullptr) v += a.bias[k];
      if (a.relu && v < 0.0f) v = 0.0f;
      *o = v;
    }
  }
}

void fused_kernel_generic(const MicroArgs& a, const PackGeometry& geom,
                          int vw, int vk) {
  pack_window(a.pack, geom, a.tc, a.R, a.packw);
  compute_kernel_generic(a, vw, vk);
}

#define NDIRECT_KERNEL_LIST(X) \
  X(4, 1) X(4, 2) X(4, 3) X(4, 4) X(4, 5) X(4, 6) \
  X(8, 1) X(8, 2) X(8, 3) \
  X(12, 1) X(12, 2) \
  X(16, 1) X(20, 1) X(24, 1)

// Unrolled-kernel instantiations: the Eq. 3/4 solutions for the kernel
// widths of Table 4 (S=1 -> 8x12, S=3 -> 12x8, S=7 -> 20x4), each for
// stride 1 and 2, plus the 12x8 block for S=1 (forced-block ablations).
#define NDIRECT_UNROLLED_LIST(X) \
  X(8, 3, 1, 1) X(8, 3, 1, 2)    \
  X(12, 2, 1, 1) X(12, 2, 1, 2)  \
  X(12, 2, 3, 1) X(12, 2, 3, 2)  \
  X(24, 1, 5, 1) X(24, 1, 5, 2)  \
  X(20, 1, 7, 1) X(20, 1, 7, 2)

ComputeKernelFn find_unrolled_kernel(int vw, int vk, int S, int str) {
#define NDIRECT_DISPATCH_UNROLLED(VW, VKV, KS, STR)                       \
  if (vw == (VW) && vk == (VKV) * 4 && S == (KS) && str == (STR))         \
    return &compute_kernel_unrolled<VW, VKV, KS, STR>;
  NDIRECT_UNROLLED_LIST(NDIRECT_DISPATCH_UNROLLED)
#undef NDIRECT_DISPATCH_UNROLLED
  return nullptr;
}

#undef NDIRECT_UNROLLED_LIST

ComputeKernelFn find_compute_kernel(int vw, int vk) {
#define NDIRECT_DISPATCH_COMPUTE(VW, VKV) \
  if (vw == (VW) && vk == (VKV) * 4) return &compute_kernel<VW, VKV>;
  NDIRECT_KERNEL_LIST(NDIRECT_DISPATCH_COMPUTE)
#undef NDIRECT_DISPATCH_COMPUTE
  return nullptr;
}

FusedKernelFn find_fused_kernel(int vw, int vk) {
#define NDIRECT_DISPATCH_FUSED(VW, VKV) \
  if (vw == (VW) && vk == (VKV) * 4) return &fused_kernel<VW, VKV>;
  NDIRECT_KERNEL_LIST(NDIRECT_DISPATCH_FUSED)
#undef NDIRECT_DISPATCH_FUSED
  return nullptr;
}

#undef NDIRECT_KERNEL_LIST

}  // namespace ndirect
