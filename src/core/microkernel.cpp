#include "core/microkernel.h"

#include <utility>

#include "core/microkernel_generator.h"
#include "simd/vec128.h"

namespace ndirect {
namespace {

// Runtime-S/stride specialized kernels: compile-time block, runtime
// kernel-width loops. These cover feasible blocks whose (S, str) has no
// unrolled policy (S outside {1, 3, 5, 7} or stride > 2); their stores
// go through the same interior/edge paths as the policy kernels, so
// ragged tiles stay vectorized here too.
template <int VW, int VKV>
void compute_kernel(const MicroArgs& a) {
  constexpr int VK = VKV * 4;
  vec128f acc[VW][VKV];
  for (int w = 0; w < VW; ++w) {
    for (int j = 0; j < VKV; ++j) acc[w][j] = vzero();
  }
  for (int c = 0; c < a.tc; ++c) {
    const float* brows = a.pack + c * a.pack_c_stride;
    const float* fc = a.ftile + c * a.f_c_stride;
    for (int r = 0; r < a.R; ++r) {
      const float* brow = brows + r * a.pack_r_stride;
      const float* frow = fc + static_cast<std::int64_t>(r) * a.S * VK;
      for (int s = 0; s < a.S; ++s) {
        vec128f f[VKV];
        for (int j = 0; j < VKV; ++j) f[j] = vload(frow + s * VK + 4 * j);
        const float* b = brow + s;
        for (int w = 0; w < VW; ++w) {
          const vec128f x = vdup(b[w * a.str]);
          for (int j = 0; j < VKV; ++j) acc[w][j] = vfma(acc[w][j], x, f[j]);
        }
      }
    }
  }
  if (a.wn == VW && a.kn == VK) {
    detail::store_tile_interior<VW, VKV>(a, acc);
  } else {
    detail::store_tile_edge<VW, VKV>(a, acc);
  }
}

// Fused packing + first-kv compute (Section 5.3), runtime-S form.
template <int VW, int VKV>
void fused_kernel(const MicroArgs& a, const PackGeometry& g) {
  constexpr int VK = VKV * 4;
  vec128f acc[VW][VKV];
  for (int w = 0; w < VW; ++w) {
    for (int j = 0; j < VKV; ++j) acc[w][j] = vzero();
  }
  for (int c = 0; c < a.tc; ++c) {
    float* brows = a.pack + c * a.pack_c_stride;
    const float* fc = a.ftile + c * a.f_c_stride;
    for (int r = 0; r < a.R; ++r) {
      float* brow = brows + r * a.pack_r_stride;
      detail::pack_row(brow, g, c, g.ih0 + r, a.packw);
      const float* frow = fc + static_cast<std::int64_t>(r) * a.S * VK;
      for (int s = 0; s < a.S; ++s) {
        vec128f f[VKV];
        for (int j = 0; j < VKV; ++j) f[j] = vload(frow + s * VK + 4 * j);
        const float* b = brow + s;
        for (int w = 0; w < VW; ++w) {
          const vec128f x = vdup(b[w * a.str]);
          for (int j = 0; j < VKV; ++j) acc[w][j] = vfma(acc[w][j], x, f[j]);
        }
      }
    }
  }
  if (a.wn == VW && a.kn == VK) {
    detail::store_tile_interior<VW, VKV>(a, acc);
  } else {
    detail::store_tile_edge<VW, VKV>(a, acc);
  }
}

// Runtime-S dispatch table, generated from the same Eq. 3 predicate as
// the policy registry (S = 1 gives the union over all kernel widths:
// the input-row register cost only grows with S).
struct RuntimeEntry {
  int vw = 0;
  int vk = 0;
  ComputeKernelFn compute = nullptr;
  FusedKernelFn fused = nullptr;
};

template <int VW, int VK, typename Table>
constexpr void emit_runtime_block(Table& table, std::size_t& i) {
  if constexpr (kernel_block_feasible(VW, VK, 1)) {
    table[i++] = RuntimeEntry{VW, VK, &compute_kernel<VW, VK / 4>,
                              &fused_kernel<VW, VK / 4>};
  }
}

template <int VW, typename Table>
constexpr void emit_runtime_row(Table& table, std::size_t& i) {
  [&]<int... Ks>(std::integer_sequence<int, Ks...>) {
    (emit_runtime_block<VW, (Ks + 1) * 4>(table, i), ...);
  }(std::make_integer_sequence<int, kMaxVk / 4>{});
}

constexpr auto build_runtime_table() {
  std::array<RuntimeEntry,
             static_cast<std::size_t>(detail::policy_block_count(1))>
      table{};
  std::size_t i = 0;
  [&]<int... Ws>(std::integer_sequence<int, Ws...>) {
    (emit_runtime_row<(Ws + 1) * 4>(table, i), ...);
  }(std::make_integer_sequence<int, kMaxVw / 4>{});
  return table;
}

constexpr auto kRuntimeTable = build_runtime_table();

const KernelEntry* find_policy(int vw, int vk, int S, int str,
                               TailMode tail) {
  for (const KernelEntry& e : kernel_registry()) {
    if (e.vw == vw && e.vk == vk && e.S == S && e.str == str &&
        e.tail == tail) {
      return &e;
    }
  }
  return nullptr;
}

}  // namespace

void pack_window(float* pack, const PackGeometry& geom, int tc, int R,
                 int packw) {
  for (int c = 0; c < tc; ++c) {
    for (int r = 0; r < R; ++r) {
      detail::pack_row(pack + (static_cast<std::int64_t>(c) * R + r) * packw,
                       geom, c, geom.ih0 + r, packw);
    }
  }
}

void compute_kernel_generic(const MicroArgs& a, int vw, int vk) {
  const int vkv = vk / 4;
  vec128f acc[kMaxVw][kMaxVk / 4];
  for (int w = 0; w < vw; ++w) {
    for (int j = 0; j < vkv; ++j) acc[w][j] = vzero();
  }
  for (int c = 0; c < a.tc; ++c) {
    const float* brows = a.pack + c * a.pack_c_stride;
    const float* fc = a.ftile + c * a.f_c_stride;
    for (int r = 0; r < a.R; ++r) {
      const float* brow = brows + r * a.pack_r_stride;
      const float* frow = fc + static_cast<std::int64_t>(r) * a.S * vk;
      for (int s = 0; s < a.S; ++s) {
        vec128f f[kMaxVk / 4];
        for (int j = 0; j < vkv; ++j) f[j] = vload(frow + s * vk + 4 * j);
        const float* b = brow + s;
        for (int w = 0; w < vw; ++w) {
          const vec128f x = vdup(b[w * a.str]);
          for (int j = 0; j < vkv; ++j) acc[w][j] = vfma(acc[w][j], x, f[j]);
        }
      }
    }
  }
  // Scalar spill-and-copy store: the generic kernel is the last-resort
  // path for blocks outside the registry, so it keeps the simplest
  // correct store rather than the vectorized interior/edge pair.
  float tile[kMaxVw][kMaxVk];
  for (int w = 0; w < vw; ++w) {
    for (int j = 0; j < vkv; ++j) vstore(&tile[w][4 * j], acc[w][j]);
  }
  for (int w = 0; w < a.wn; ++w) {
    for (int k = 0; k < a.kn; ++k) {
      float* o = a.out + k * a.out_k_stride + w * a.out_w_stride;
      float v = a.accumulate ? *o + tile[w][k] : tile[w][k];
      if (a.bias != nullptr) v += a.bias[k];
      if (a.relu && v < 0.0f) v = 0.0f;
      *o = v;
    }
  }
}

void fused_kernel_generic(const MicroArgs& a, const PackGeometry& geom,
                          int vw, int vk) {
  pack_window(a.pack, geom, a.tc, a.R, a.packw);
  compute_kernel_generic(a, vw, vk);
}

const std::vector<KernelEntry>& kernel_registry() {
  static const std::vector<KernelEntry> registry = [] {
    std::vector<KernelEntry> all;
    for (const detail::PolicySpan span :
         {detail::policy_entries_s1(), detail::policy_entries_s3(),
          detail::policy_entries_s5(), detail::policy_entries_s7()}) {
      all.insert(all.end(), span.data, span.data + span.size);
    }
    return all;
  }();
  return registry;
}

const std::vector<RegisterBlock>& microkernel_blocks() {
  static const std::vector<RegisterBlock> blocks = [] {
    std::vector<RegisterBlock> v;
    v.reserve(kRuntimeTable.size());
    for (const RuntimeEntry& e : kRuntimeTable) v.push_back({e.vw, e.vk});
    return v;
  }();
  return blocks;
}

const char* kernel_class_name(KernelClass cls) {
  switch (cls) {
    case KernelClass::kUnrolled: return "unrolled";
    case KernelClass::kSpecialized: return "specialized";
    case KernelClass::kGeneric: return "generic";
  }
  return "?";
}

KernelResolution resolve_kernel(int vw, int vk, int S, int str) {
  KernelResolution r;
  if (const KernelEntry* in = find_policy(vw, vk, S, str, TailMode::kInterior);
      in != nullptr) {
    const KernelEntry* ed = find_policy(vw, vk, S, str, TailMode::kEdge);
    r.interior = in->compute;
    r.interior_fused = in->fused;
    r.edge = ed->compute;
    r.edge_fused = ed->fused;
    r.cls = KernelClass::kUnrolled;
    r.reason = "";
    return r;
  }
  if (ComputeKernelFn fn = find_compute_kernel(vw, vk); fn != nullptr) {
    // The runtime-S kernel branches interior/edge internally, so it
    // serves both dispatch slots.
    r.interior = r.edge = fn;
    r.interior_fused = r.edge_fused = find_fused_kernel(vw, vk);
    r.cls = KernelClass::kSpecialized;
    if (str != 1 && str != 2) {
      r.reason = "stride outside the unrolled set {1, 2}";
    } else if (S != 1 && S != 3 && S != 5 && S != 7) {
      r.reason = "kernel width S outside the unrolled set {1, 3, 5, 7}";
    } else {
      r.reason = "block exceeds the Eq. 3 budget at this kernel width";
    }
    return r;
  }
  r.cls = KernelClass::kGeneric;
  r.reason = "block (vw, vk) outside the Eq. 3 feasible registry";
  return r;
}

ComputeKernelFn find_unrolled_kernel(int vw, int vk, int S, int str) {
  const KernelEntry* e = find_policy(vw, vk, S, str, TailMode::kInterior);
  return e != nullptr ? e->compute : nullptr;
}

ComputeKernelFn find_compute_kernel(int vw, int vk) {
  for (const RuntimeEntry& e : kRuntimeTable) {
    if (e.vw == vw && e.vk == vk) return e.compute;
  }
  return nullptr;
}

FusedKernelFn find_fused_kernel(int vw, int vk) {
  for (const RuntimeEntry& e : kRuntimeTable) {
    if (e.vw == vw && e.vk == vk) return e.fused;
  }
  return nullptr;
}

}  // namespace ndirect
