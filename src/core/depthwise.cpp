#include "core/depthwise.h"

#include <cassert>

#include "simd/vec128.h"

namespace ndirect {
namespace {

// Depthwise micro-kernel: one output row (n, c, oj), vectorized over 4
// output columns; the reduction runs over (r, s) only — the C reduction
// of Algorithm 3 is removed, exactly as Section 10.2 prescribes.
// Interior columns take the SIMD path; borders and strided layers take
// the scalar path.
void depthwise_row(const float* chan, const float* frow_base,
                   float* out_row, const DepthwiseParams& p, int oj) {
  const int Q = p.Q();

  auto scalar_at = [&](int oi) {
    float sum = 0.0f;
    for (int r = 0; r < p.R; ++r) {
      const int ij = p.str * oj + r - p.pad;
      if (ij < 0 || ij >= p.H) continue;
      const float* in_row = chan + static_cast<std::int64_t>(ij) * p.W;
      const float* frow = frow_base + r * p.S;
      for (int s = 0; s < p.S; ++s) {
        const int ii = p.str * oi + s - p.pad;
        if (ii < 0 || ii >= p.W) continue;
        sum += in_row[ii] * frow[s];
      }
    }
    return sum;
  };

  if (p.str != 1) {
    for (int oi = 0; oi < Q; ++oi) out_row[oi] = scalar_at(oi);
    return;
  }

  const int lo = p.pad;
  const int hi = std::max(lo, std::min(Q, p.W - p.S + 1 + p.pad));
  for (int oi = 0; oi < lo; ++oi) out_row[oi] = scalar_at(oi);
  int oi = lo;
  // 2x4-wide register blocking over output columns.
  for (; oi + 8 <= hi; oi += 8) {
    vec128f acc0 = vzero(), acc1 = vzero();
    for (int r = 0; r < p.R; ++r) {
      const int ij = oj + r - p.pad;
      if (ij < 0 || ij >= p.H) continue;
      const float* in_row =
          chan + static_cast<std::int64_t>(ij) * p.W - p.pad + oi;
      const float* frow = frow_base + r * p.S;
      for (int s = 0; s < p.S; ++s) {
        const vec128f f = vdup(frow[s]);
        acc0 = vfma(acc0, vload(in_row + s), f);
        acc1 = vfma(acc1, vload(in_row + s + 4), f);
      }
    }
    vstore(out_row + oi, acc0);
    vstore(out_row + oi + 4, acc1);
  }
  for (; oi + 4 <= hi; oi += 4) {
    vec128f acc = vzero();
    for (int r = 0; r < p.R; ++r) {
      const int ij = oj + r - p.pad;
      if (ij < 0 || ij >= p.H) continue;
      const float* in_row =
          chan + static_cast<std::int64_t>(ij) * p.W - p.pad + oi;
      const float* frow = frow_base + r * p.S;
      for (int s = 0; s < p.S; ++s) {
        acc = vfma(acc, vload(in_row + s), vdup(frow[s]));
      }
    }
    vstore(out_row + oi, acc);
  }
  for (; oi < Q; ++oi) out_row[oi] = scalar_at(oi);
}

}  // namespace

Tensor depthwise_conv_nchw(const Tensor& input, const Tensor& filter,
                           const DepthwiseParams& p, ThreadPool* pool) {
  assert(p.valid());
  assert(input.layout() == Layout::NCHW);
  assert(filter.layout() == Layout::KCRS && filter.dim(0) == p.C &&
         filter.dim(1) == 1);
  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::global();

  const int P = p.P(), Q = p.Q();
  Tensor out = make_output_nchw(p.N, p.C, P, Q);
  const std::int64_t hw_in = std::int64_t{p.H} * p.W;
  const std::int64_t hw_out = std::int64_t{P} * Q;

  // Channels are independent: parallelize (n, c) with no reduction
  // hazards (the depthwise analogue of never splitting C in Section 6
  // does not arise — C is not a reduction dimension here). Dynamic
  // claiming because channel cost is uniform but core availability is
  // not; the grain keeps ~8 claims per worker so stealing can rebalance
  // without per-channel claim traffic.
  const std::int64_t work = std::int64_t{p.N} * p.C;
  const std::size_t grain = std::max<std::size_t>(
      1, static_cast<std::size_t>(work) / (8 * tp.size()));
  tp.parallel_for_dynamic(
      static_cast<std::size_t>(work), grain,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t item = begin; item < end; ++item) {
          const std::int64_t c = static_cast<std::int64_t>(item) % p.C;
          const std::int64_t n = static_cast<std::int64_t>(item) / p.C;
          const float* chan = input.data() + (n * p.C + c) * hw_in;
          const float* frow =
              filter.data() + c * static_cast<std::int64_t>(p.R) * p.S;
          float* out_chan = out.data() + (n * p.C + c) * hw_out;
          for (int oj = 0; oj < P; ++oj) {
            depthwise_row(chan, frow, out_chan + std::int64_t{oj} * Q, p,
                          oj);
          }
        }
      });
  return out;
}

Tensor depthwise_conv_reference(const Tensor& input, const Tensor& filter,
                                const DepthwiseParams& p) {
  const int P = p.P(), Q = p.Q();
  Tensor out = make_output_nchw(p.N, p.C, P, Q);
  for (int n = 0; n < p.N; ++n)
    for (int c = 0; c < p.C; ++c)
      for (int oj = 0; oj < P; ++oj)
        for (int oi = 0; oi < Q; ++oi) {
          double sum = 0;
          for (int r = 0; r < p.R; ++r) {
            const int ij = p.str * oj + r - p.pad;
            if (ij < 0 || ij >= p.H) continue;
            for (int s = 0; s < p.S; ++s) {
              const int ii = p.str * oi + s - p.pad;
              if (ii < 0 || ii >= p.W) continue;
              sum += static_cast<double>(input.at4(n, c, ij, ii)) *
                     static_cast<double>(filter.at4(c, 0, r, s));
            }
          }
          out.at4(n, c, oj, oi) = static_cast<float>(sum);
        }
  return out;
}

Tensor separable_conv_nchw(const Tensor& input, const Tensor& dw_filter,
                           const Tensor& pw_filter,
                           const DepthwiseParams& dw, int K,
                           ThreadPool* pool) {
  const Tensor mid = depthwise_conv_nchw(input, dw_filter, dw, pool);
  // Pointwise = 1x1 nDirect convolution on the depthwise output.
  const ConvParams pw{.N = dw.N, .C = dw.C, .H = dw.P(), .W = dw.Q(),
                      .K = K, .R = 1, .S = 1, .str = 1, .pad = 0};
  assert(pw_filter.dim(0) == K && pw_filter.dim(1) == dw.C);
  NdirectOptions opts;
  opts.pool = pool;
  return ndirect_conv(mid, pw_filter, pw, opts);
}

}  // namespace ndirect
