// On-the-fly filter layout transform (line 5 of Algorithm 2).
//
// A Tk x Tc x R x S tile of the KCRS filter is rewritten as
// [Tk/Vk][Tc][R][S][Vk] so the micro-kernel loads Vk output channels
// with one contiguous vector load. The transform runs inside loop L4,
// so the tile lands (and stays) in the L2 cache right before the
// micro-kernels start consuming it.
#pragma once

#include <cstdint>

namespace ndirect {

/// Transform the tile filter[kt : kt+tkn, ct : ct+tcn, :, :] into `tile`
/// (size ceil(tkn/vk)*tcn*R*S*vk floats). K positions beyond `K` (the
/// ragged last block) are zero-filled so the micro-kernel can always run
/// full Vk vectors.
void transform_filter_tile(const float* filter, int K, int C, int R, int S,
                           int kt, int tkn, int ct, int tcn, int vk,
                           float* tile);

/// Process-wide count of transform_filter_tile invocations (relaxed
/// atomic; monotonic). Lets tests and benches prove the packed-filter
/// cache eliminates per-call transforms: the count must not move across
/// steady-state inference calls.
std::uint64_t transform_filter_tile_calls();

}  // namespace ndirect
