#include "core/tiling.h"

#include <algorithm>

namespace ndirect {
namespace {

std::int64_t l1_working_set(int tc, const RegisterBlock& rb, int R, int S) {
  // Eq. 1 LHS: R*Tc*(Vw+S-1) input elements + 2 filter slices of
  // Vk*Tc*R*S elements.
  return std::int64_t{R} * tc * (rb.vw + S - 1) +
         2LL * rb.vk * tc * R * S;
}

std::int64_t l2_working_set(int tk, int tc, const RegisterBlock& rb, int R,
                            int S) {
  // Eq. 2 LHS: Tk*Tc*R*S filter block + 2 input slices.
  return std::int64_t{tk} * tc * R * S +
         2LL * R * tc * (rb.vw + S - 1);
}

}  // namespace

bool TilingPlan::satisfies_l1(const CacheInfo& cache, const RegisterBlock& rb,
                              int R, int S) const {
  const std::int64_t l1_elems =
      static_cast<std::int64_t>(cache.l1d / sizeof(float));
  return l1_working_set(tc, rb, R, S) < l1_elems;
}

bool TilingPlan::satisfies_l2(const CacheInfo& cache, const RegisterBlock& rb,
                              int R, int S) const {
  const std::int64_t l2_elems = static_cast<std::int64_t>(
      kL2Headroom * static_cast<double>(cache.l2 / sizeof(float)));
  return l2_working_set(tk, tc, rb, R, S) < l2_elems;
}

TilingPlan solve_tiling(const CacheInfo& cache, const RegisterBlock& rb,
                        const ConvParams& p) {
  TilingPlan plan;
  const int R = p.R, S = p.S;
  const std::int64_t l1_elems =
      static_cast<std::int64_t>(cache.l1d / sizeof(float));
  const std::int64_t l2_elems = static_cast<std::int64_t>(
      kL2Headroom * static_cast<double>(cache.l2 / sizeof(float)));

  // Eq. 1 solved for Tc (per-channel L1 footprint is constant in Tc).
  const std::int64_t per_c =
      std::int64_t{R} * (rb.vw + S - 1) + 2LL * rb.vk * R * S;
  std::int64_t tc = (l1_elems - 1) / per_c;
  plan.tc = static_cast<int>(std::clamp<std::int64_t>(tc, 1, p.C));

  // Eq. 2 solved for Tk given Tc, rounded down to a Vk multiple.
  const std::int64_t input_slices =
      2LL * R * plan.tc * (rb.vw + S - 1);
  std::int64_t tk =
      (l2_elems - 1 - input_slices) / (std::int64_t{plan.tc} * R * S);
  tk = tk / rb.vk * rb.vk;
  const std::int64_t k_ceil =
      (std::int64_t{p.K} + rb.vk - 1) / rb.vk * rb.vk;
  plan.tk = static_cast<int>(std::clamp<std::int64_t>(tk, rb.vk, k_ceil));

  // Th from the L3 capacity when one exists: half the LLC should hold
  // the Tc x (Th*str + R - str) x W input block a row tile touches.
  const int P = p.P();
  if (cache.l3 > 0) {
    const std::int64_t l3_elems =
        static_cast<std::int64_t>(cache.l3 / sizeof(float)) / 2;
    std::int64_t rows = l3_elems / (std::int64_t{plan.tc} * p.W);
    std::int64_t th = (rows - (R - p.str)) / p.str;
    plan.th = static_cast<int>(std::clamp<std::int64_t>(th, 1, P));
  } else {
    // No LLC beyond L2 (e.g. Phytium 2000+): no extra blocking level.
    plan.th = P;
  }
  return plan;
}

}  // namespace ndirect
