#include "core/conv3d.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace ndirect {
namespace {

// Gather the depth-d slice of [N,C,D,H,W] into a contiguous NCHW tensor.
// The (n, c) copies are independent; dynamic claiming lets the copy
// bandwidth scale with whatever cores are free between conv calls.
void gather_input_slice(const Tensor& input, const Conv3dParams& p, int d,
                        Tensor& slice, ThreadPool& tp) {
  const std::int64_t hw = std::int64_t{p.H} * p.W;
  const std::size_t work = static_cast<std::size_t>(p.N) * p.C;
  tp.parallel_for_dynamic(
      work, std::max<std::size_t>(1, work / (4 * tp.size())),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t nc = begin; nc < end; ++nc) {
          const float* src =
              input.data() +
              ((static_cast<std::int64_t>(nc) * p.D + d) * hw);
          float* dst = slice.data() + static_cast<std::int64_t>(nc) * hw;
          std::memcpy(dst, src,
                      sizeof(float) * static_cast<std::size_t>(hw));
        }
      });
}

// Gather the kernel-depth-t slice of [K,C,T,R,S] into KCRS.
void gather_filter_slice(const Tensor& filter, const Conv3dParams& p,
                         int t, Tensor& slice) {
  const std::int64_t rs = std::int64_t{p.R} * p.S;
  for (int k = 0; k < p.K; ++k) {
    for (int c = 0; c < p.C; ++c) {
      const float* src =
          filter.data() + ((std::int64_t{k} * p.C + c) * p.T + t) * rs;
      float* dst = slice.data() + (std::int64_t{k} * p.C + c) * rs;
      std::memcpy(dst, src, sizeof(float) * static_cast<std::size_t>(rs));
    }
  }
}

}  // namespace

Tensor conv3d_ndirect(const Tensor& input, const Tensor& filter,
                      const Conv3dParams& p, ThreadPool* pool) {
  assert(p.valid());
  assert(input.rank() == 5 && input.dim(0) == p.N && input.dim(1) == p.C &&
         input.dim(2) == p.D && input.dim(3) == p.H && input.dim(4) == p.W);
  assert(filter.rank() == 5 && filter.dim(0) == p.K &&
         filter.dim(1) == p.C && filter.dim(2) == p.T &&
         filter.dim(3) == p.R && filter.dim(4) == p.S);

  const int Dout = p.Dout(), P = p.P(), Q = p.Q();
  Tensor out({p.N, p.K, Dout, P, Q}, Layout::Linear);
  out.fill_zero();

  const ConvParams p2{.N = p.N, .C = p.C, .H = p.H, .W = p.W, .K = p.K,
                      .R = p.R, .S = p.S, .str = p.str, .pad = p.pad};
  NdirectOptions opts;
  opts.pool = pool;
  const NdirectConv conv2d(p2, opts);  // one plan serves every slice

  Tensor in_slice = make_input_nchw(p.N, p.C, p.H, p.W);
  Tensor flt_slice = make_filter_kcrs(p.K, p.C, p.R, p.S);
  const std::int64_t out_plane = std::int64_t{P} * Q;

  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::global();
  for (int t = 0; t < p.T; ++t) {
    gather_filter_slice(filter, p, t, flt_slice);
    for (int od = 0; od < Dout; ++od) {
      const int d = od * p.str + t - p.pad_d;
      if (d < 0 || d >= p.D) continue;  // depth padding contributes zero
      gather_input_slice(input, p, d, in_slice, tp);
      const Tensor partial = conv2d.run(in_slice, flt_slice);
      // Accumulate the 2D result into the od output plane. Each (n, k)
      // pair owns a disjoint output plane, so the claims are race-free.
      const std::size_t planes = static_cast<std::size_t>(p.N) * p.K;
      tp.parallel_for_dynamic(
          planes, std::max<std::size_t>(1, planes / (4 * tp.size())),
          [&](std::size_t begin, std::size_t end) {
            for (std::size_t nk = begin; nk < end; ++nk) {
              const float* src =
                  partial.data() +
                  static_cast<std::int64_t>(nk) * out_plane;
              float* dst =
                  out.data() +
                  (static_cast<std::int64_t>(nk) * Dout + od) * out_plane;
              for (std::int64_t i = 0; i < out_plane; ++i)
                dst[i] += src[i];
            }
          });
    }
  }
  return out;
}

Tensor conv3d_reference(const Tensor& input, const Tensor& filter,
                        const Conv3dParams& p) {
  const int Dout = p.Dout(), P = p.P(), Q = p.Q();
  Tensor out({p.N, p.K, Dout, P, Q}, Layout::Linear);
  auto in_at = [&](int n, int c, int d, int h, int w) {
    return input.data()[(((std::int64_t{n} * p.C + c) * p.D + d) * p.H +
                         h) *
                            p.W +
                        w];
  };
  auto flt_at = [&](int k, int c, int t, int r, int s) {
    return filter.data()[(((std::int64_t{k} * p.C + c) * p.T + t) * p.R +
                          r) *
                             p.S +
                         s];
  };
  for (int n = 0; n < p.N; ++n)
    for (int k = 0; k < p.K; ++k)
      for (int od = 0; od < Dout; ++od)
        for (int oj = 0; oj < P; ++oj)
          for (int oi = 0; oi < Q; ++oi) {
            double sum = 0;
            for (int c = 0; c < p.C; ++c)
              for (int t = 0; t < p.T; ++t) {
                const int d = od * p.str + t - p.pad_d;
                if (d < 0 || d >= p.D) continue;
                for (int r = 0; r < p.R; ++r) {
                  const int ij = oj * p.str + r - p.pad;
                  if (ij < 0 || ij >= p.H) continue;
                  for (int s = 0; s < p.S; ++s) {
                    const int ii = oi * p.str + s - p.pad;
                    if (ii < 0 || ii >= p.W) continue;
                    sum += static_cast<double>(in_at(n, c, d, ij, ii)) *
                           static_cast<double>(flt_at(k, c, t, r, s));
                  }
                }
              }
            out.data()[(((std::int64_t{n} * p.K + k) * Dout + od) * P +
                        oj) *
                           Q +
                       oi] = static_cast<float>(sum);
          }
  return out;
}

}  // namespace ndirect
