#include "core/fai.h"

#include "simd/vec128.h"

namespace ndirect {

int register_cost(int vw, int vk, int S, int lanes) {
  const int input_regs = (vw + S - 1 + lanes - 1) / lanes;
  const int filter_regs = vk / lanes;
  const int acc_regs = vw * vk / lanes;
  return input_regs + filter_regs + acc_regs;
}

double fai_microkernel(int vw, int vk, int S) {
  const double flops = 2.0 * S * vw * vk;
  const double loads = (vw + S - 1) + static_cast<double>(S) * vk;
  return flops / loads;
}

bool register_block_feasible(int vw, int vk, int S, int lanes, int regs) {
  if (vw <= 0 || vk <= 0) return false;
  if (vk % lanes != 0) return false;  // Eq. 3 second condition
  if (vw % lanes != 0) return false;  // transpose-store constraint
  return register_cost(vw, vk, S, lanes) <= regs;
}

std::vector<RegisterBlock> feasible_register_blocks(int S, int lanes,
                                                    int regs) {
  std::vector<RegisterBlock> blocks;
  const int limit = lanes * regs;
  for (int vk = lanes; vk <= limit; vk += lanes) {
    for (int vw = lanes; vw <= limit; vw += lanes) {
      if (register_block_feasible(vw, vk, S, lanes, regs)) {
        blocks.push_back({vw, vk});
      }
    }
  }
  return blocks;
}

RegisterBlock solve_register_block(int S, int lanes, int regs) {
  RegisterBlock best{lanes, lanes};
  double best_fai = -1.0;
  for (const RegisterBlock& b : feasible_register_blocks(S, lanes, regs)) {
    const double fai = fai_microkernel(b.vw, b.vk, S);
    const bool better =
        fai > best_fai + 1e-12 ||
        (fai > best_fai - 1e-12 &&
         (b.vk > best.vk || (b.vk == best.vk && b.vw > best.vw)));
    if (better) {
      best = b;
      best_fai = fai;
    }
  }
  return best;
}

}  // namespace ndirect
