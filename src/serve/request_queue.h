// Request types and the lock-guarded FIFO request queue.
//
// A Request is one single-image inference (N=1 NCHW tensor) with an
// absolute deadline and a promise for its result. The queue itself is
// a plain FIFO deque guarded by one mutex: the server's submit path
// pushes under the lock, executor lanes plan/extract batches under the
// same lock, and the queue's condition variable — together with
// Clock::wait_until — is the only thing anyone ever blocks on. FIFO
// extraction is a fairness guarantee: requests within one deadline
// class are served in arrival order, and batches are always contiguous
// prefixes of the queue.
#pragma once

#include <cstdint>
#include <deque>
#include <future>
#include <stdexcept>
#include <vector>

#include "serve/clock.h"
#include "tensor/tensor.h"

namespace ndirect::serve {

/// Per-request observability, filled by the server when the request's
/// batch completes (all times from the server's Clock, so exact under
/// a VirtualClock).
struct ServeStats {
  /// The server-assigned request id (monotonic in submit order) — the
  /// same id the serve_* trace spans carry as their "req" arg, so a
  /// result can be joined against the timeline.
  std::uint64_t request_id = 0;
  std::uint64_t arrival_ns = 0;   ///< submit() time
  std::uint64_t launch_ns = 0;    ///< when the batch started executing
  std::uint64_t done_ns = 0;      ///< when the result was delivered
  std::uint64_t queue_wait_ns = 0;  ///< launch - arrival
  int batch_size = 0;             ///< requests coalesced into the batch
  /// deadline - done; negative = served but late (a deadline miss).
  /// INT64_MAX for requests submitted without a deadline.
  std::int64_t deadline_slack_ns = 0;
  std::uint64_t predicted_batch_ns = 0;  ///< model latency at batch_size
  std::uint64_t measured_batch_ns = 0;   ///< wall time of the forward
};

/// What a served request's future resolves to.
struct ServeResult {
  Tensor output;  ///< N=1 slice of the batch output
  ServeStats stats;
};

/// Why a request was load-shed instead of served.
enum class ShedReason {
  kAdmission,        ///< rejected on arrival: model predicts a miss
  kDeadlineExpired,  ///< deadline passed while queued
  kShutdown,         ///< server stopping (submit-after-shutdown or
                     ///< non-drain shutdown dropping the queue)
};

const char* shed_reason_name(ShedReason r);

/// The exception a shed request's future throws.
class ShedError : public std::runtime_error {
 public:
  explicit ShedError(ShedReason reason);
  ShedReason reason() const { return reason_; }

 private:
  ShedReason reason_;
};

struct Request {
  std::uint64_t id = 0;
  Tensor input;  ///< [1, C, H, W] NCHW
  std::uint64_t arrival_ns = 0;
  std::uint64_t deadline_ns = kNeverNs;  ///< absolute; kNeverNs = none
  std::promise<ServeResult> promise;
};

/// FIFO queue of pending requests. All methods except mutex()/cv()
/// require the caller to hold mutex() — the server's submit path and
/// executor lanes coordinate through that one lock.
class RequestQueue {
 public:
  std::mutex& mutex() { return mu_; }
  std::condition_variable& cv() { return cv_; }

  void push(Request r) { q_.push_back(std::move(r)); }
  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }
  const std::deque<Request>& pending() const { return q_; }

  /// Remove and return the first `n` requests (the batch).
  std::vector<Request> pop_front(int n);

  /// Remove and return every pending request that can no longer meet
  /// its deadline even if launched alone right now (deadline <
  /// now + predict_1_ns) — the in-queue shed set.
  std::vector<Request> take_expired(std::uint64_t now,
                                    std::uint64_t predict_1_ns);

  /// Remove and return everything (non-drain shutdown).
  std::vector<Request> drain();

 private:
  std::deque<Request> q_;
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace ndirect::serve
