#include "serve/observability.h"

#include <algorithm>
#include <cstdio>

namespace ndirect::serve {
namespace {

constexpr std::uint64_t kNsPerSec = 1'000'000'000ull;

std::string fmt_ms(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(ns) * 1e-6);
  return buf;
}

std::string fmt_frac(double f) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", f);
  return buf;
}

/// Index of the largest shed_by_reason entry (ties to the first).
int dominant_shed_reason(const SloWindowStats& w) {
  int best = 0;
  for (int r = 1; r < 3; ++r)
    if (w.shed_by_reason[r] > w.shed_by_reason[best]) best = r;
  return best;
}

}  // namespace

ServeInstruments::ServeInstruments(const std::string& server_name,
                                   int max_batch) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const MetricLabels base{{"server", server_name}};

  submitted = reg.counter("ndirect_serve_requests", base,
                          "requests offered to submit()");
  admitted = reg.counter("ndirect_serve_admitted", base,
                         "requests accepted into the queue");
  served = reg.counter("ndirect_serve_served", base,
                       "requests completed with a result");
  deadline_missed =
      reg.counter("ndirect_serve_deadline_missed", base,
                  "requests served after their deadline");
  failed = reg.counter("ndirect_serve_failed", base,
                       "requests failed by an execution error");
  batches = reg.counter("ndirect_serve_batches", base,
                        "coalesced batches launched");
  for (int r = 0; r < 3; ++r) {
    MetricLabels l = base;
    l.push_back({"reason", shed_reason_name(static_cast<ShedReason>(r))});
    shed[r] = reg.counter("ndirect_serve_shed", std::move(l),
                          "requests load-shed, by reason");
  }
  queue_depth = reg.gauge("ndirect_serve_queue_depth", base,
                          "pending requests in the FIFO queue");

  queue_wait_ns =
      reg.histogram("ndirect_serve_queue_wait_ns", base,
                    "nanoseconds from submit to batch launch");
  execute_ns = reg.histogram("ndirect_serve_execute_ns", base,
                             "batch forward wall nanoseconds");
  e2e_ns = reg.histogram("ndirect_serve_e2e_ns", base,
                         "nanoseconds from submit to result delivery");
  deadline_slack_ns = reg.histogram(
      "ndirect_serve_deadline_slack_ns", base,
      "nanoseconds of deadline margin at delivery (0 = missed)");

  const int sizes = std::max(max_batch, 1) + 1;
  e2e_by_batch.resize(static_cast<std::size_t>(sizes), nullptr);
  execute_by_batch.resize(static_cast<std::size_t>(sizes), nullptr);
  for (int b = 1; b < sizes; ++b) {
    MetricLabels l = base;
    l.push_back({"batch", std::to_string(b)});
    e2e_by_batch[static_cast<std::size_t>(b)] = reg.histogram(
        "ndirect_serve_e2e_by_batch_ns", l,
        "end-to-end nanoseconds, split by coalesced batch size");
    execute_by_batch[static_cast<std::size_t>(b)] = reg.histogram(
        "ndirect_serve_execute_by_batch_ns", std::move(l),
        "batch forward nanoseconds, split by coalesced batch size");
  }
}

SloMonitor::SloMonitor(SloConfig config)
    : config_(config),
      ring_(static_cast<std::size_t>(kRingSeconds)) {}

SloMonitor::Slice& SloMonitor::slice_at(std::uint64_t now_ns) {
  const std::uint64_t second = now_ns / kNsPerSec;
  Slice& s = ring_[static_cast<std::size_t>(
      second % static_cast<std::uint64_t>(kRingSeconds))];
  if (s.second != second) {
    s = Slice{};
    s.second = second;
  }
  return s;
}

void SloMonitor::record_served(std::uint64_t now_ns,
                               std::uint64_t e2e_ns, bool on_time) {
  std::lock_guard<std::mutex> lock(mu_);
  Slice& s = slice_at(now_ns);
  s.served += 1;
  if (on_time) s.on_time += 1;
  s.e2e.counts[HistogramLayout::bucket_of(e2e_ns)] += 1;
  s.e2e.count += 1;
  s.e2e.sum += e2e_ns;
}

void SloMonitor::record_shed(std::uint64_t now_ns, ShedReason reason) {
  std::lock_guard<std::mutex> lock(mu_);
  slice_at(now_ns).shed_by_reason[static_cast<int>(reason)] += 1;
}

SloWindowStats SloMonitor::window(std::uint64_t now_ns,
                                  int window_s) const {
  SloWindowStats out;
  out.window_s = std::min(std::max(window_s, 1), kRingSeconds);
  const std::uint64_t now_sec = now_ns / kNsPerSec;
  HistogramSnapshot e2e;
  std::lock_guard<std::mutex> lock(mu_);
  for (int back = 0; back < out.window_s; ++back) {
    const std::uint64_t b = static_cast<std::uint64_t>(back);
    if (b > now_sec) break;  // window reaches before t=0
    const std::uint64_t second = now_sec - b;
    const Slice& s = ring_[static_cast<std::size_t>(
        second % static_cast<std::uint64_t>(kRingSeconds))];
    if (s.second != second) continue;  // stale or never written
    out.served += s.served;
    out.on_time += s.on_time;
    for (int r = 0; r < 3; ++r) {
      out.shed_by_reason[r] += s.shed_by_reason[r];
      out.shed += s.shed_by_reason[r];
    }
    e2e.merge(s.e2e);
  }
  out.p99_ns = e2e.quantile(0.99);
  return out;
}

std::vector<std::string> SloMonitor::evaluate(
    std::uint64_t now_ns, const SloEvidence& evidence) const {
  SloWindowStats w[3];
  for (int i = 0; i < 3; ++i) w[i] = window(now_ns, kWindowsS[i]);

  std::vector<std::string> out;

  // Rule 1: e2e p99 ceiling. Report the widest breached window (the
  // most statistically solid one), then attribute.
  if (config_.target_p99_ns > 0) {
    int breached = -1;
    for (int i = 0; i < 3; ++i)
      if (w[i].served > 0 && w[i].p99_ns > config_.target_p99_ns)
        breached = i;
    if (breached >= 0) {
      const SloWindowStats& b = w[breached];
      std::string d = "SLO breach: e2e p99 " + fmt_ms(b.p99_ns) +
                      " ms > target " + fmt_ms(config_.target_p99_ns) +
                      " ms over " + std::to_string(b.window_s) +
                      "s window (" + std::to_string(b.served) +
                      " served)";
      if (evidence.model_ratio > 1.25) {
        d += "; admission underestimate: measured/predicted = " +
             fmt_frac(evidence.model_ratio) +
             " — EWMA calibration lagging";
        if (evidence.model_scale > 0)
          d += " (scale " + fmt_frac(evidence.model_scale) + ")";
      } else if (b.shed == 0 && b.served > 0) {
        d += "; queue is keeping up — batch latency itself exceeds "
             "the target (lower max_batch or raise the target)";
      }
      out.push_back(std::move(d));
    }
  }

  // Rule 2: goodput floor (on-time fraction of finished requests).
  if (config_.min_goodput_fraction > 0) {
    int breached = -1;
    for (int i = 0; i < 3; ++i)
      if (w[i].finished() > 0 &&
          w[i].goodput_fraction() < config_.min_goodput_fraction)
        breached = i;
    if (breached >= 0) {
      const SloWindowStats& b = w[breached];
      std::string d =
          "SLO breach: goodput " + fmt_frac(b.goodput_fraction()) +
          " < target " + fmt_frac(config_.min_goodput_fraction) +
          " over " + std::to_string(b.window_s) + "s window (" +
          std::to_string(b.on_time) + " on-time / " +
          std::to_string(b.served) + " served / " +
          std::to_string(b.shed) + " shed)";
      const std::uint64_t late = b.served - b.on_time;
      if (late > b.shed) {
        d += "; served-late dominates: batch latency exceeds the "
             "deadline slack admission assumed";
        if (evidence.model_ratio > 1.25)
          d += " (measured/predicted = " +
               fmt_frac(evidence.model_ratio) + ")";
      } else if (b.shed > 0) {
        const int r = dominant_shed_reason(b);
        d += std::string("; shedding dominates, mostly ") +
             shed_reason_name(static_cast<ShedReason>(r)) +
             (r == static_cast<int>(ShedReason::kAdmission)
                  ? " — offered load exceeds predicted capacity"
                  : r == static_cast<int>(ShedReason::kDeadlineExpired)
                        ? " — arrival bursts outrun the drain rate"
                        : " — server was shutting down");
      }
      out.push_back(std::move(d));
    }
  }

  // Rule 3: shed-fraction ceiling, with burst detection: a 1 s shed
  // fraction far above the 60 s baseline is a spike, not steady
  // overload, and usually points at a transient (cold filter-cache
  // repack, calibration step) rather than capacity.
  if (config_.max_shed_fraction < 1.0) {
    int breached = -1;
    for (int i = 0; i < 3; ++i)
      if (w[i].finished() > 0 &&
          w[i].shed_fraction() > config_.max_shed_fraction)
        breached = i;
    if (breached >= 0) {
      const SloWindowStats& b = w[breached];
      std::string d = "SLO breach: shed fraction " +
                      fmt_frac(b.shed_fraction()) + " > target " +
                      fmt_frac(config_.max_shed_fraction) + " over " +
                      std::to_string(b.window_s) + "s window (" +
                      std::to_string(b.shed) + " shed, mostly " +
                      shed_reason_name(static_cast<ShedReason>(
                          dominant_shed_reason(b))) +
                      ")";
      const bool spike = w[0].finished() > 0 && w[2].finished() > 0 &&
                         w[0].shed_fraction() >
                             3.0 * w[2].shed_fraction() &&
                         w[0].shed_fraction() >
                             config_.max_shed_fraction;
      if (spike) {
        d += "; 1s spike over the 60s baseline — transient stall";
        if (evidence.filter_repacks > 0)
          d += " (filter-cache repacks seen: " +
               std::to_string(evidence.filter_repacks) +
               "; a cold repack stalls the first batch)";
      }
      out.push_back(std::move(d));
    }
  }

  return out;
}

}  // namespace ndirect::serve
