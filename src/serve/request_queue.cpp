#include "serve/request_queue.h"

#include <string>

namespace ndirect::serve {

const char* shed_reason_name(ShedReason r) {
  switch (r) {
    case ShedReason::kAdmission: return "admission";
    case ShedReason::kDeadlineExpired: return "deadline_expired";
    case ShedReason::kShutdown: return "shutdown";
  }
  return "?";
}

ShedError::ShedError(ShedReason reason)
    : std::runtime_error(std::string("request shed: ") +
                         shed_reason_name(reason)),
      reason_(reason) {}

std::vector<Request> RequestQueue::pop_front(int n) {
  std::vector<Request> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n && !q_.empty(); ++i) {
    out.push_back(std::move(q_.front()));
    q_.pop_front();
  }
  return out;
}

std::vector<Request> RequestQueue::take_expired(std::uint64_t now,
                                                std::uint64_t predict_1_ns) {
  std::vector<Request> shed;
  // Saturating now + predict(1): a request is hopeless when even an
  // immediate solo launch would finish past its deadline.
  const std::uint64_t finish =
      now > kNeverNs - predict_1_ns ? kNeverNs : now + predict_1_ns;
  for (auto it = q_.begin(); it != q_.end();) {
    if (it->deadline_ns != kNeverNs && it->deadline_ns < finish) {
      shed.push_back(std::move(*it));
      it = q_.erase(it);
    } else {
      ++it;
    }
  }
  return shed;
}

std::vector<Request> RequestQueue::drain() {
  std::vector<Request> out(std::make_move_iterator(q_.begin()),
                           std::make_move_iterator(q_.end()));
  q_.clear();
  return out;
}

}  // namespace ndirect::serve
