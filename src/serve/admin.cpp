#include "serve/admin.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <vector>

#include "runtime/env.h"
#include "runtime/metrics.h"
#include "runtime/shutdown.h"
#include "runtime/trace.h"
#include "serve/serve_report.h"
#include "serve/server.h"

namespace ndirect::serve {

namespace {

constexpr char kOpenMetricsType[] =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";
constexpr char kJsonType[] = "application/json; charset=utf-8";

// Leaked on purpose: serve::Server destructors may unregister during
// static destruction, after a non-leaked registry would be gone (same
// policy as the exit-hook chain in runtime/shutdown.cpp).
struct LiveRegistry {
  std::mutex mu;
  std::vector<Server*> servers;  ///< registration order
};

LiveRegistry& live() {
  static LiveRegistry* r = new LiveRegistry;
  return *r;
}

HttpResponse json_response(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.content_type = kJsonType;
  r.body = std::move(body);
  return r;
}

HttpResponse handle_metrics(const HttpRequest&) {
  HttpResponse r;
  r.content_type = kOpenMetricsType;
  r.body = MetricsRegistry::global().text();
  return r;
}

HttpResponse handle_healthz(const HttpRequest&) {
  HttpResponse r;
  r.body = "ok\n";
  return r;
}

// Readiness: 200 only when at least one server is registered and all
// of them are kReady. Warming, draining, stopped, or an empty registry
// answer 503, so a fleet router stops sending traffic before drain
// begins and never sends it before warm-up ends.
HttpResponse handle_readyz(const HttpRequest&) {
  std::size_t total = 0;
  std::size_t ready = 0;
  std::string servers;
  for_each_live_server([&](Server& s) {
    if (total > 0) servers += ", ";
    ++total;
    const ServeState st = s.state();
    if (st == ServeState::kReady) ++ready;
    servers += "{\"name\": \"" + json_escape(s.options().name) +
               "\", \"state\": \"" + serve_state_name(st) + "\"}";
  });
  const bool ok = total > 0 && ready == total;
  return json_response(
      ok ? 200 : 503,
      std::string("{\"ready\": ") + (ok ? "true" : "false") +
          ", \"servers\": [" + servers + "]}\n");
}

HttpResponse handle_slo(const HttpRequest&) {
  std::string body = "{\"servers\": [";
  bool first_server = true;
  for_each_live_server([&](Server& s) {
    if (!first_server) body += ", ";
    first_server = false;
    const std::uint64_t now = s.now_ns();
    body += "{\"name\": \"" + json_escape(s.options().name) +
            "\", \"state\": \"" + serve_state_name(s.state()) +
            "\", \"windows\": [";
    bool first = true;
    for (const int w : SloMonitor::kWindowsS) {
      if (!first) body += ", ";
      first = false;
      body += slo_window_json(s.slo().window(now, w));
    }
    body += "], \"diagnoses\": [";
    first = true;
    for (const std::string& d :
         s.slo().evaluate(now, s.slo_evidence())) {
      if (!first) body += ", ";
      first = false;
      body += "\"" + json_escape(d) + "\"";
    }
    body += "]}";
  });
  body += "]}\n";
  return json_response(200, std::move(body));
}

HttpResponse handle_report(const HttpRequest&) {
  std::string body = "{\"servers\": [";
  bool first = true;
  for_each_live_server([&](Server& s) {
    if (!first) body += ", ";
    first = false;
    const ServeState st = s.state();
    body += "{\"name\": \"" + json_escape(s.options().name) +
            "\", \"state\": \"" + serve_state_name(st) + "\"";
    // A warming server is still mid-construction (its latency model
    // may not exist yet), so it is listed but carries no report.
    if (st != ServeState::kWarming)
      body += ", \"report\": " + build_serve_report(s).to_json();
    body += "}";
  });
  body += "]}\n";
  return json_response(200, std::move(body));
}

HttpResponse handle_trace_start(const HttpRequest& req) {
  const std::string events = req.query_param("events", "0");
  const std::size_t capacity = static_cast<std::size_t>(
      std::strtoull(events.c_str(), nullptr, 10));
  TraceSession::global().start(capacity);
  return json_response(
      200, "{\"tracing\": true, \"capacity\": " +
               std::to_string(TraceSession::global().capacity()) +
               "}\n");
}

HttpResponse handle_trace_stop(const HttpRequest&) {
  TraceSession& t = TraceSession::global();
  t.stop();
  // The chrome-trace document itself is the response body: curl it
  // straight into a file and open it in ui.perfetto.dev.
  return json_response(200, t.json());
}

}  // namespace

AdminServer& AdminServer::global() {
  // Leaked: the exit hook closes the transport; the object itself must
  // outlive any static destructor that might still query it.
  static AdminServer* a = new AdminServer;
  return *a;
}

AdminServer::~AdminServer() { stop(); }

void AdminServer::start(AdminOptions options) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (http_) return;
    HttpServerOptions ho;
    ho.bind_address = options.bind_address;
    ho.port = options.port;
    ho.handler_threads = options.handler_threads;
    auto http = std::make_unique<HttpServer>(ho);
    mount_routes(*http);
    http->start();
    http_ = std::move(http);
  }
  refresh_exit_hook();
}

void AdminServer::stop() {
  std::unique_ptr<HttpServer> http;
  std::uint64_t hook = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    http = std::move(http_);
    hook = exit_hook_;
    exit_hook_ = 0;
  }
  // Outside mu_: when the exit-hook chain itself is running this stop
  // (process exit), unregistering from the runner thread is a plain
  // erase — no self-wait (runtime/shutdown.cpp).
  if (hook != 0) unregister_exit_hook(hook);
  if (http) http->stop();
}

bool AdminServer::running() const {
  std::lock_guard<std::mutex> lk(mu_);
  return http_ != nullptr && http_->running();
}

int AdminServer::port() const {
  std::lock_guard<std::mutex> lk(mu_);
  return http_ != nullptr ? http_->port() : 0;
}

std::uint64_t AdminServer::requests_handled() const {
  std::lock_guard<std::mutex> lk(mu_);
  return http_ != nullptr ? http_->requests_handled() : 0;
}

void AdminServer::refresh_exit_hook() {
  // The chain is LIFO, so "admin closes before servers drain" means
  // the admin hook must be the most recent registration. Re-front it:
  // drop the old token, register a fresh one. Both chain calls happen
  // outside mu_ (the hook itself is stop(), which takes mu_).
  std::uint64_t old = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!http_) return;
    old = exit_hook_;
    exit_hook_ = 0;
  }
  if (old != 0) unregister_exit_hook(old);
  const std::uint64_t fresh =
      register_exit_hook("admin-server", [this] { stop(); });
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (http_ && exit_hook_ == 0) {
      exit_hook_ = fresh;
      return;
    }
  }
  // Lost a race with stop(): the transport is gone, drop our hook.
  unregister_exit_hook(fresh);
}

void AdminServer::mount_routes(HttpServer& http) {
  http.route("GET", "/metrics", handle_metrics);
  http.route("GET", "/healthz", handle_healthz);
  http.route("GET", "/readyz", handle_readyz);
  http.route("GET", "/slo", handle_slo);
  http.route("GET", "/report", handle_report);
  http.route("POST", "/trace/start", handle_trace_start);
  http.route("POST", "/trace/stop", handle_trace_stop);
}

void register_live_server(Server* s) {
  {
    std::lock_guard<std::mutex> lk(live().mu);
    live().servers.push_back(s);
  }
  // This server is about to register its drain hook; keep the admin
  // transport ahead of it in the LIFO chain. Outside the registry
  // lock: refresh touches the chain and the admin mutex.
  AdminServer::global().refresh_exit_hook();
}

void unregister_live_server(Server* s) {
  std::lock_guard<std::mutex> lk(live().mu);
  auto& v = live().servers;
  v.erase(std::remove(v.begin(), v.end(), s), v.end());
}

void for_each_live_server(const std::function<void(Server&)>& fn) {
  std::lock_guard<std::mutex> lk(live().mu);
  for (Server* s : live().servers) fn(*s);
}

std::size_t live_server_count() {
  std::lock_guard<std::mutex> lk(live().mu);
  return live().servers.size();
}

namespace {

/// NDIRECT_ADMIN_PORT=<port> starts the global admin server at load
/// time (0 = ephemeral) and prints the bound address to stderr so
/// scripts can scrape it; NDIRECT_ADMIN_BIND overrides the loopback
/// bind. The same switch installs the SIGTERM/SIGINT graceful-shutdown
/// handlers: a fleet sending SIGTERM gets drained servers and flushed
/// exporters, not a mid-batch abort.
struct AdminAutostart {
  AdminAutostart() {
    const char* port = std::getenv("NDIRECT_ADMIN_PORT");
    if (port == nullptr || *port == '\0') return;
    AdminOptions o;
    o.port = static_cast<int>(env_long("NDIRECT_ADMIN_PORT", 0));
    if (const char* bind = std::getenv("NDIRECT_ADMIN_BIND"))
      o.bind_address = bind;
    try {
      AdminServer::global().start(o);
      std::fprintf(stderr, "ndirect: admin server on %s:%d\n",
                   o.bind_address.c_str(),
                   AdminServer::global().port());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ndirect: admin autostart failed: %s\n",
                   e.what());
    }
    install_signal_shutdown();
  }
};
const AdminAutostart g_admin_autostart;

}  // namespace

}  // namespace ndirect::serve
