// Injectable time source for the serving layer (DESIGN.md §15).
//
// Every queue/deadline decision in serve/ reads time exclusively
// through a Clock and blocks exclusively through Clock::wait_until, so
// the same batching/admission/shedding code runs against the wall
// clock in production and against a VirtualClock in tests — where time
// moves only when the test calls advance(). That makes every timeout
// path exact and reproducible: no sleeps, no "within 50ms" margins, no
// flaky wall-clock assertions (the serving_test suite must survive
// `ctest --repeat until-fail:100`).
//
// The wait contract is deliberately condvar-shaped rather than
// sleep-shaped: the caller holds its own mutex, passes its own
// condition variable, and re-checks its predicate in a loop after
// every return (returns may be spurious, exactly like cv.wait). This
// lets one wait simultaneously respond to "time reached the batch
// launch instant" (clock-driven) and "a new request arrived /
// shutdown began" (cv notified by the server) without polling.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace ndirect::serve {

/// "No deadline" / "wait indefinitely" sentinel for absolute times.
inline constexpr std::uint64_t kNeverNs = ~std::uint64_t{0};

class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in nanoseconds (monotonic; epoch is clock-defined).
  virtual std::uint64_t now_ns() const = 0;

  /// Block the calling thread — which holds `lk` — until roughly
  /// now_ns() >= t_ns, `cv` is notified, or spuriously. The caller
  /// MUST re-check its predicate and the time in a loop; this is a
  /// single cv.wait-style round, not a guarantee. t_ns == kNeverNs
  /// waits for a notification only.
  virtual void wait_until(std::condition_variable& cv,
                          std::unique_lock<std::mutex>& lk,
                          std::uint64_t t_ns) = 0;

  /// Drop every registration of `cv` and block until no in-flight
  /// wakeup pass can still touch it. A waiter whose cv/mutex die
  /// before the clock does MUST call this first, and MUST NOT hold
  /// the mutex it waited with while doing so (a wakeup pass may be
  /// blocked acquiring that mutex, and this call waits for the pass).
  /// No-op for clocks that keep no registry (RealClock).
  virtual void unregister_waiter(std::condition_variable* /*cv*/) {}
};

/// Production clock: steady_clock time, cv.wait_for-based timed waits.
class RealClock final : public Clock {
 public:
  std::uint64_t now_ns() const override;
  void wait_until(std::condition_variable& cv,
                  std::unique_lock<std::mutex>& lk,
                  std::uint64_t t_ns) override;

  /// Shared stateless instance (what a null ServerOptions::clock means).
  static RealClock& instance();
};

/// Test clock: time is a counter that moves only on advance()/set(),
/// and waiters are woken through a registered-waiter handshake that
/// cannot lose a wakeup (see wait_until for the ordering argument).
///
/// advance()/set() must not be called while holding a mutex that a
/// waiter passed to wait_until — the wakeup handshake acquires each
/// waiter's mutex briefly to close the check-then-wait race.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(std::uint64_t start_ns = 0) : now_(start_ns) {}

  std::uint64_t now_ns() const override {
    return now_.load(std::memory_order_seq_cst);
  }

  void wait_until(std::condition_variable& cv,
                  std::unique_lock<std::mutex>& lk,
                  std::uint64_t t_ns) override;

  /// Move time forward by `delta_ns` and wake every registered waiter.
  void advance(std::uint64_t delta_ns);

  /// Jump to absolute time `t_ns` (monotonic: earlier times are
  /// ignored) and wake every registered waiter.
  void set(std::uint64_t t_ns);

  /// Erase `cv` from the registry, then wait for every in-flight
  /// set()/advance() wakeup pass to finish — after this returns, no
  /// clock thread holds a pointer to `cv` and it is safe to destroy.
  void unregister_waiter(std::condition_variable* cv) override;

 private:
  void register_waiter(std::condition_variable* cv, std::mutex* mu);

  std::atomic<std::uint64_t> now_;
  std::mutex mu_;  ///< guards waiters_ and notify_passes_
  /// Registered once per (cv, mutex) pair, kept until explicitly
  /// unregistered: a waiter whose cv dies before the clock must
  /// unregister_waiter() first (see Clock::unregister_waiter).
  std::vector<std::pair<std::condition_variable*, std::mutex*>> waiters_;
  int notify_passes_ = 0;  ///< set()/advance() passes mid-notification
  std::condition_variable drained_;  ///< notify_passes_ reached zero
};

}  // namespace ndirect::serve
