// Multi-tenant inference server: dynamic batching + deadline-aware
// admission over the concurrent nn::Graph executor (DESIGN.md §15).
//
// A Server owns a pool of per-batch-size Graph instances built by one
// GraphFactory (same seed => same weights, so any batch size computes
// the same function) that all dispatch onto one shared ThreadPool and
// keep their packed filters cached after a warm-up forward. Incoming
// single-image requests flow through:
//
//   submit() --admission--> RequestQueue --batch plan--> executor lane
//      |  (reject-on-arrival when                |  (FIFO prefix sized
//      |   the model predicts a miss)            |   by the FAI model)
//      v                                         v
//   future<ServeResult>  <---- batch forward, output sliced per image
//
// Every decision reads time through an injected Clock, which is what
// makes the whole admission/batching/shedding state machine
// deterministic under the VirtualClock test harness: no sleeps, no
// wall-clock assertions, exact reproducible timeouts.
//
// Batched execution is bitwise-identical to one-at-a-time forwards:
// the engine's tile scheduler gives every output element its full C
// reduction inside one tile claim regardless of N (DESIGN.md §10), so
// coalescing requests can change latency but never results — asserted
// per-slice by the serving tests and DagFuzz's batch-invariance sweep.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "nn/graph.h"
#include "runtime/telemetry.h"
#include "serve/batching.h"
#include "serve/clock.h"
#include "serve/latency_model.h"
#include "serve/observability.h"
#include "serve/request_queue.h"

namespace ndirect::serve {

/// Builds a fresh Graph for the given batch size. Must be pure in
/// `batch`: same weights/topology for every N (e.g. capture a fixed
/// seed and forward it to the model builders).
using GraphFactory = std::function<std::unique_ptr<Graph>(int batch)>;

/// Lifecycle a readiness probe (serve/admin.h's /readyz) can observe.
/// kWarming covers construction — graph builds and the packed-filter
/// warm-up forward; kReady means the executor lanes are accepting;
/// kDraining begins at shutdown() entry; kStopped once the lanes have
/// joined. Only kReady answers a readiness probe with 200.
enum class ServeState { kWarming, kReady, kDraining, kStopped };

const char* serve_state_name(ServeState state);

struct ServerOptions {
  /// Tenant label: becomes the {server="..."} label on every registry
  /// instrument this server registers, so multiple Server instances
  /// (one per model — the multi-tenant shape) stay separable in one
  /// OpenMetrics exposition.
  std::string name = "default";
  int max_batch = 8;   ///< largest coalesced batch
  int executors = 1;   ///< concurrent batch lanes (graph leases)
  /// Deadline budget applied by submit(input) with no explicit budget;
  /// kNeverNs = no deadline.
  std::uint64_t default_deadline_ns = 100'000'000;
  /// Cap on how long a partial batch lingers for more arrivals beyond
  /// the deadline-derived launch instant (measured from the head
  /// request's arrival). kNeverNs = deadline-driven only.
  std::uint64_t max_linger_ns = kNeverNs;
  /// Reject-on-arrival when the model predicts a deadline miss. Off:
  /// everything is admitted and hopeless requests shed in-queue.
  bool admission_control = true;
  /// EWMA-calibrate the latency model from measured batch wall times.
  bool calibrate = true;
  /// Run one zero-input forward when a graph instance is built, so its
  /// packed-filter caches are warm before real traffic hits it.
  bool warmup = true;
  Clock* clock = nullptr;         ///< nullptr = RealClock::instance()
  /// Batch latency model for admission/sizing. nullptr = the server
  /// builds a GraphLatencyModel on the probed host platform (first
  /// call measures peak/bandwidth). Must outlive the server.
  LatencyModel* model = nullptr;
  /// ThreadPool all graphs' convolutions dispatch onto.
  /// nullptr = ThreadPool::global().
  ThreadPool* pool = nullptr;
  /// Register per-server instruments in the global MetricsRegistry and
  /// record into them on every request. Off: the server stays out of
  /// the registry entirely (the SLO monitor still runs — it is plain
  /// per-server state, not a registry instrument).
  bool observe = true;
  /// The SLO the rolling watchdog judges traffic against. Defaults
  /// disable every rule.
  SloConfig slo{};
};

/// Aggregate serving counters (one consistent snapshot).
struct ServerStatsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t served = 0;          ///< futures resolved with a value
  std::uint64_t shed_admission = 0;  ///< rejected on arrival
  std::uint64_t shed_expired = 0;    ///< deadline passed while queued
  std::uint64_t shed_shutdown = 0;   ///< dropped by non-drain shutdown
  std::uint64_t failed = 0;          ///< futures resolved with a
                                     ///< non-shed exception
  std::uint64_t batches = 0;
  std::uint64_t batched_requests = 0;  ///< sum of batch sizes
  std::uint64_t deadline_misses = 0;   ///< served but past deadline
  std::uint64_t queued = 0;            ///< pending right now
  std::uint64_t predicted_ns_sum = 0;  ///< over launched batches
  std::uint64_t measured_ns_sum = 0;

  double mean_batch() const {
    return batches > 0 ? static_cast<double>(batched_requests) /
                             static_cast<double>(batches)
                       : 0.0;
  }
  std::uint64_t shed_total() const {
    return shed_admission + shed_expired + shed_shutdown;
  }
};

class Server {
 public:
  Server(GraphFactory factory, ServerOptions options = {});
  ~Server();  ///< shutdown(/*drain=*/true)

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueue one [1, C, H, W] image with a deadline budget of
  /// `deadline_budget_ns` from now (kNeverNs = no deadline). The
  /// future resolves to the result, or throws ShedError when the
  /// request was load-shed, or rethrows whatever the graph threw when
  /// its batch failed. Never blocks on inference.
  std::future<ServeResult> submit(Tensor input,
                                  std::uint64_t deadline_budget_ns);
  std::future<ServeResult> submit(Tensor input) {
    return submit(std::move(input), options_.default_deadline_ns);
  }

  /// Stop the server. drain=true serves everything already queued
  /// (partial batches launch immediately); drain=false sheds the
  /// queue. Further submits are shed with ShedReason::kShutdown.
  /// Idempotent; blocks until the executor lanes joined.
  void shutdown(bool drain = true);

  ServerStatsSnapshot stats() const;

  /// Serve-event counters (Counter::kServe*): slot 0 = admission side,
  /// slots 1..executors = batch lanes. Aggregate with telemetry().total.
  const WorkerTelemetry& telemetry() const { return telemetry_; }

  /// (batch size, predicted ns, measured ns) of every launched batch,
  /// in launch order — the raw data behind the ServeReport.
  struct BatchRecord {
    int batch_size = 0;
    std::uint64_t predicted_ns = 0;
    std::uint64_t measured_ns = 0;
  };
  std::vector<BatchRecord> batch_records() const;

  const ServerOptions& options() const { return options_; }
  const TensorShape& input_shape() const { return input_shape_; }
  LatencyModel& model() { return *model_; }
  const LatencyModel& model() const { return *model_; }

  /// The whole process's OpenMetrics exposition (this server's
  /// instruments included) — what the admin plane's /metrics returns.
  std::string metrics_text() const;

  /// Where this server is in its lifecycle (see ServeState). Readable
  /// from any thread at any point after construction *began*: the
  /// server registers itself with the admin plane's live-server
  /// registry before the warm-up work runs, so /readyz reports 503
  /// while filters are still packing.
  ServeState state() const {
    return state_.load(std::memory_order_acquire);
  }
  /// True exactly when state() == kReady: warmed up and not draining.
  bool ready() const { return state() == ServeState::kReady; }

  /// The rolling-window SLO watchdog (always live; judge it with
  /// slo().evaluate(now_ns(), slo_evidence())).
  const SloMonitor& slo() const { return slo_mon_; }
  /// Current time on this server's Clock (virtual under VirtualClock).
  std::uint64_t now_ns() const { return clock_->now_ns(); }
  /// Evidence for SLO breach attribution: overall measured/predicted
  /// ratio, the model's EWMA calibration scale (0 when the model has
  /// none), and the count of cold graph builds (each one repacks the
  /// filter cache for a new batch size).
  SloEvidence slo_evidence() const;
  /// This server's registry handles; nullptr when options.observe is
  /// false. Histogram snapshots answer p50/p95/p99 queries.
  const ServeInstruments* instruments() const { return obs_.get(); }

 private:
  void executor_loop(int lane);
  void run_batch(int lane, std::vector<Request> batch,
                 const BatchPlan& plan, std::uint64_t launch_ns);
  /// Resolve `r` with a ShedError, emit the trace instant and bump
  /// counter `c` on telemetry slot `slot` (0 = admission side,
  /// lane + 1 for executor lanes). Call without the queue lock held.
  void shed(Request r, ShedReason reason, int slot, Counter c);
  std::unique_ptr<Graph> acquire_graph(int batch);
  void release_graph(int batch, std::unique_ptr<Graph> g);
  std::uint64_t earliest_free_at() const;  ///< requires queue lock

  GraphFactory factory_;
  ServerOptions options_;
  Clock* clock_;
  LatencyModel* model_;
  std::unique_ptr<LatencyModel> owned_model_;
  ThreadPool* pool_;
  TensorShape input_shape_{};  ///< N=1 accepted input shape

  mutable RequestQueue queue_;  ///< mutable: const snapshots lock it
  // Guarded by queue_.mutex():
  bool stopping_ = false;
  bool drain_on_stop_ = true;
  std::vector<std::uint64_t> busy_until_;  ///< per lane; 0 = idle
  std::uint64_t next_id_ = 0;
  ServerStatsSnapshot stats_;
  std::vector<BatchRecord> records_;

  std::mutex graphs_mu_;
  std::map<int, std::vector<std::unique_ptr<Graph>>> free_graphs_;

  std::atomic<ServeState> state_{ServeState::kWarming};
  WorkerTelemetry telemetry_;
  std::unique_ptr<ServeInstruments> obs_;  ///< null when !observe
  SloMonitor slo_mon_;
  std::atomic<std::uint64_t> graph_builds_{0};  ///< cold factory calls
  std::uint64_t exit_hook_ = 0;  ///< runtime/shutdown.h registration
  std::vector<std::thread> lanes_;
  std::mutex join_mu_;  ///< serializes the shutdown join
};

}  // namespace ndirect::serve
