// Predicted-vs-measured report for a serving run: the ConvReport
// analogue one level up the stack.
//
// A ConvReport judges one convolution against the roofline; a
// ServeReport judges the serving layer's *decisions* against reality:
// how well the latency model that sized batches and admitted requests
// tracked the measured batch wall times (per batch size and overall),
// how much coalescing actually happened, and where requests were lost
// (admission, expiry, shutdown, failures). The diagnoses flag the
// actionable mismatches — a model ratio far from 1 means admission is
// lying, a mean batch near 1 under load means batching never kicks in.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/server.h"

namespace ndirect::serve {

struct ServeReport {
  // Request accounting (from ServerStatsSnapshot).
  std::uint64_t submitted = 0;
  std::uint64_t served = 0;
  std::uint64_t shed_admission = 0;
  std::uint64_t shed_expired = 0;
  std::uint64_t shed_shutdown = 0;
  std::uint64_t failed = 0;
  std::uint64_t deadline_misses = 0;
  double goodput_fraction = 0;  ///< served on time / submitted

  // Batching outcome.
  std::uint64_t batches = 0;
  double mean_batch = 0;

  /// Per-batch-size model accuracy, ascending by batch size.
  struct BatchRow {
    int batch_size = 0;
    std::uint64_t count = 0;          ///< batches launched at this size
    double mean_predicted_ms = 0;
    double mean_measured_ms = 0;
    double model_ratio = 0;  ///< measured / predicted (0 if no data)
  };
  std::vector<BatchRow> rows;

  double model_ratio = 0;  ///< overall measured / predicted ns sums
  double model_scale = 0;  ///< calibration scale (1 = untouched;
                           ///< 0 when the model has no scale)

  /// End-to-end latency percentiles from the server's registry
  /// histogram (exact to within one log-bucket width); all zero when
  /// the server runs with observe=false or served nothing.
  double e2e_p50_ms = 0;
  double e2e_p95_ms = 0;
  double e2e_p99_ms = 0;

  /// The SLO watchdog's rolling windows (1 s / 10 s / 60 s ending at
  /// the report's build time, on the server's Clock).
  std::vector<SloWindowStats> slo_windows;

  /// Human-readable mismatches ("model underpredicts 3.2x", "no
  /// coalescing under load") plus any active SLO-breach diagnoses
  /// from the watchdog; empty when serving matched the model and SLO.
  std::vector<std::string> diagnoses;

  std::string to_text() const;
  std::string to_json() const;
};

/// Build the report from a server's accumulated stats and batch
/// records. Safe to call while the server is live (snapshots under the
/// server's locks), though numbers are most meaningful after the
/// traffic of interest has drained.
ServeReport build_serve_report(const Server& server);

/// One SloWindowStats as a JSON object — shared by
/// ServeReport::to_json and the admin plane's /slo endpoint so both
/// surfaces expose identical window documents.
std::string slo_window_json(const SloWindowStats& w);

/// JSON string escaping (quote/backslash escaped, control bytes to
/// \u00XX) for diagnosis strings and server names.
std::string json_escape(const std::string& s);

}  // namespace ndirect::serve
