#include "serve/batching.h"

#include <algorithm>

namespace ndirect::serve {

namespace {

std::uint64_t saturating_add(std::uint64_t a, std::uint64_t b) {
  return a > kNeverNs - b ? kNeverNs : a + b;
}

}  // namespace

BatchPlan plan_batch(const std::deque<Request>& pending,
                     std::uint64_t now, int max_batch,
                     const LatencyModel& model,
                     bool more_arrivals_possible,
                     std::uint64_t max_linger_ns) {
  BatchPlan plan;
  const int limit =
      static_cast<int>(std::min<std::size_t>(pending.size(),
                                             static_cast<std::size_t>(
                                                 std::max(1, max_batch))));
  if (limit == 0) return plan;

  // Grow the FIFO prefix while the predicted batch latency still meets
  // the tightest deadline in the batch. The head request is always
  // taken (expiry shedding ran first, so it is feasible solo — and a
  // server must make progress even when the model disagrees).
  std::uint64_t tightest = kNeverNs;
  for (int k = 1; k <= limit; ++k) {
    const std::uint64_t d =
        std::min(tightest, pending[static_cast<std::size_t>(k - 1)]
                               .deadline_ns);
    const std::uint64_t p = model.predict_ns(k);
    if (k > 1 && saturating_add(now, p) > d) break;
    plan.size = k;
    plan.predicted_ns = p;
    plan.tightest_deadline_ns = d;
    tightest = d;
  }

  // Launch timing: a full batch (or a draining server) goes now;
  // otherwise linger for more arrivals until the latest instant the
  // current members still make their tightest deadline.
  if (plan.size >= max_batch || !more_arrivals_possible) {
    plan.launch_at = now;
    return plan;
  }
  std::uint64_t latest = kNeverNs;
  if (plan.tightest_deadline_ns != kNeverNs) {
    latest = plan.tightest_deadline_ns > plan.predicted_ns
                 ? plan.tightest_deadline_ns - plan.predicted_ns
                 : now;
  }
  if (max_linger_ns != kNeverNs) {
    latest = std::min(
        latest, saturating_add(pending.front().arrival_ns, max_linger_ns));
  }
  // No deadline anywhere and no linger cap: nothing bounds the wait,
  // so do not wait at all.
  plan.launch_at = latest == kNeverNs ? now : std::max(now, latest);
  return plan;
}

std::uint64_t estimate_finish_ns(std::uint64_t now,
                                 std::size_t queue_depth,
                                 std::uint64_t busy_free_at,
                                 int max_batch, int executors,
                                 const LatencyModel& model) {
  max_batch = std::max(1, max_batch);
  executors = std::max(1, executors);
  const std::uint64_t start = std::max(now, busy_free_at);
  const std::uint64_t full_batches =
      queue_depth / static_cast<std::size_t>(max_batch);
  const int remainder =
      static_cast<int>(queue_depth % static_cast<std::size_t>(max_batch));
  // Backlog of full batches drains across the executor lanes; the
  // arriving request then rides the remainder batch.
  const std::uint64_t backlog =
      full_batches * model.predict_ns(max_batch) /
      static_cast<std::uint64_t>(executors);
  const std::uint64_t own =
      model.predict_ns(std::min(remainder + 1, max_batch));
  std::uint64_t finish = start;
  finish = finish > kNeverNs - backlog ? kNeverNs : finish + backlog;
  finish = finish > kNeverNs - own ? kNeverNs : finish + own;
  return finish;
}

bool admit(std::uint64_t now, std::uint64_t deadline_ns,
           std::size_t queue_depth, std::uint64_t busy_free_at,
           int max_batch, int executors, const LatencyModel& model) {
  if (deadline_ns == kNeverNs) return true;
  return estimate_finish_ns(now, queue_depth, busy_free_at, max_batch,
                            executors, model) <= deadline_ns;
}

}  // namespace ndirect::serve
