#include "serve/serve_report.h"

#include <cstdio>
#include <map>

namespace ndirect::serve {

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string fmt3(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (u < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", u);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string slo_window_json(const SloWindowStats& w) {
  return "{\"window_s\": " + std::to_string(w.window_s) +
         ", \"served\": " + std::to_string(w.served) +
         ", \"on_time\": " + std::to_string(w.on_time) +
         ", \"shed\": " + std::to_string(w.shed) +
         ", \"goodput_fraction\": " + fmt(w.goodput_fraction()) +
         ", \"shed_fraction\": " + fmt(w.shed_fraction()) +
         ", \"p99_ns\": " + std::to_string(w.p99_ns) + "}";
}

ServeReport build_serve_report(const Server& server) {
  const ServerStatsSnapshot stats = server.stats();
  const std::vector<Server::BatchRecord> records = server.batch_records();

  ServeReport rep;
  rep.submitted = stats.submitted;
  rep.served = stats.served;
  rep.shed_admission = stats.shed_admission;
  rep.shed_expired = stats.shed_expired;
  rep.shed_shutdown = stats.shed_shutdown;
  rep.failed = stats.failed;
  rep.deadline_misses = stats.deadline_misses;
  rep.batches = stats.batches;
  rep.mean_batch = stats.mean_batch();
  if (stats.submitted > 0) {
    const std::uint64_t on_time =
        stats.served >= stats.deadline_misses
            ? stats.served - stats.deadline_misses
            : 0;
    rep.goodput_fraction = static_cast<double>(on_time) /
                           static_cast<double>(stats.submitted);
  }

  struct Acc {
    std::uint64_t count = 0;
    double predicted_ns = 0;
    double measured_ns = 0;
  };
  std::map<int, Acc> by_size;
  for (const Server::BatchRecord& r : records) {
    Acc& a = by_size[r.batch_size];
    ++a.count;
    a.predicted_ns += static_cast<double>(r.predicted_ns);
    a.measured_ns += static_cast<double>(r.measured_ns);
  }
  for (const auto& [size, a] : by_size) {
    ServeReport::BatchRow row;
    row.batch_size = size;
    row.count = a.count;
    const double n = static_cast<double>(a.count);
    row.mean_predicted_ms = a.predicted_ns / n * 1e-6;
    row.mean_measured_ms = a.measured_ns / n * 1e-6;
    row.model_ratio =
        a.predicted_ns > 0 ? a.measured_ns / a.predicted_ns : 0;
    rep.rows.push_back(row);
  }

  rep.model_ratio =
      stats.predicted_ns_sum > 0
          ? static_cast<double>(stats.measured_ns_sum) /
                static_cast<double>(stats.predicted_ns_sum)
          : 0;
  if (const auto* gm =
          dynamic_cast<const GraphLatencyModel*>(&server.model()))
    rep.model_scale = gm->scale();

  if (const ServeInstruments* obs = server.instruments()) {
    const HistogramSnapshot e2e = obs->e2e_ns->snapshot();
    if (e2e.count > 0) {
      rep.e2e_p50_ms = static_cast<double>(e2e.quantile(0.50)) * 1e-6;
      rep.e2e_p95_ms = static_cast<double>(e2e.quantile(0.95)) * 1e-6;
      rep.e2e_p99_ms = static_cast<double>(e2e.quantile(0.99)) * 1e-6;
    }
  }

  const std::uint64_t now = server.now_ns();
  for (const int w : SloMonitor::kWindowsS)
    rep.slo_windows.push_back(server.slo().window(now, w));

  // Diagnoses: actionable mismatches only.
  if (rep.model_ratio > 0 &&
      (rep.model_ratio > 2.0 || rep.model_ratio < 0.5)) {
    rep.diagnoses.push_back(
        "latency model " +
        std::string(rep.model_ratio > 1 ? "underpredicts" :
                                          "overpredicts") +
        " batch latency " + fmt3(rep.model_ratio > 1
                                     ? rep.model_ratio
                                     : 1.0 / rep.model_ratio) +
        "x: admission and batch sizing run on wrong estimates" +
        (rep.model_scale > 0 ? " (calibration scale " +
                                   fmt3(rep.model_scale) + ")"
                             : ""));
  }
  if (stats.batches > 0 && stats.queued + stats.submitted > 0 &&
      rep.mean_batch < 1.5 &&
      stats.shed_admission + stats.shed_expired > stats.served / 10) {
    rep.diagnoses.push_back(
        "mean batch " + fmt3(rep.mean_batch) +
        " while shedding load: batching is not engaging (deadlines too "
        "tight for predicted latency, or max_batch/linger too small)");
  }
  if (stats.served > 0 &&
      stats.deadline_misses * 10 > stats.served) {
    rep.diagnoses.push_back(
        std::to_string(stats.deadline_misses) + "/" +
        std::to_string(stats.served) +
        " served requests missed their deadline: admission is too "
        "optimistic (model underpredicts or calibration lags)");
  }

  // Fold in whatever the SLO watchdog sees right now.
  for (std::string& d :
       server.slo().evaluate(now, server.slo_evidence()))
    rep.diagnoses.push_back(std::move(d));

  return rep;
}

std::string ServeReport::to_text() const {
  std::string s;
  s += "== serve report ==\n";
  s += "requests: submitted " + std::to_string(submitted) + ", served " +
       std::to_string(served) + " (" + std::to_string(deadline_misses) +
       " late), shed " +
       std::to_string(shed_admission + shed_expired + shed_shutdown) +
       " (admission " + std::to_string(shed_admission) + ", expired " +
       std::to_string(shed_expired) + ", shutdown " +
       std::to_string(shed_shutdown) + "), failed " +
       std::to_string(failed) + "\n";
  s += "goodput: " + fmt3(goodput_fraction * 100) +
       "% served on time\n";
  s += "batches: " + std::to_string(batches) + ", mean size " +
       fmt3(mean_batch) + "\n";
  s += "model: measured/predicted " + fmt3(model_ratio);
  if (model_scale > 0) s += ", calibration scale " + fmt3(model_scale);
  s += "\n";
  if (e2e_p99_ms > 0) {
    s += "e2e latency: p50 " + fmt3(e2e_p50_ms) + " ms, p95 " +
         fmt3(e2e_p95_ms) + " ms, p99 " + fmt3(e2e_p99_ms) + " ms\n";
  }
  for (const SloWindowStats& w : slo_windows) {
    if (w.finished() == 0) continue;
    s += "slo " + std::to_string(w.window_s) + "s: goodput " +
         fmt3(w.goodput_fraction() * 100) + "%, shed " +
         fmt3(w.shed_fraction() * 100) + "%, p99 " +
         fmt3(static_cast<double>(w.p99_ns) * 1e-6) + " ms (" +
         std::to_string(w.served) + " served, " +
         std::to_string(w.shed) + " shed)\n";
  }
  if (!rows.empty()) {
    s += "batch size |  count | predicted ms | measured ms | ratio\n";
    for (const BatchRow& r : rows) {
      char line[128];
      std::snprintf(line, sizeof(line),
                    "%10d | %6llu | %12.3f | %11.3f | %5.2f\n",
                    r.batch_size,
                    static_cast<unsigned long long>(r.count),
                    r.mean_predicted_ms, r.mean_measured_ms,
                    r.model_ratio);
      s += line;
    }
  }
  for (const std::string& d : diagnoses) s += "!! " + d + "\n";
  return s;
}

std::string ServeReport::to_json() const {
  std::string s = "{";
  s += "\"submitted\": " + std::to_string(submitted);
  s += ", \"served\": " + std::to_string(served);
  s += ", \"deadline_misses\": " + std::to_string(deadline_misses);
  s += ", \"shed\": {\"admission\": " + std::to_string(shed_admission) +
       ", \"expired\": " + std::to_string(shed_expired) +
       ", \"shutdown\": " + std::to_string(shed_shutdown) + "}";
  s += ", \"failed\": " + std::to_string(failed);
  s += ", \"goodput_fraction\": " + fmt(goodput_fraction);
  s += ", \"batches\": " + std::to_string(batches);
  s += ", \"mean_batch\": " + fmt(mean_batch);
  s += ", \"model_ratio\": " + fmt(model_ratio);
  s += ", \"model_scale\": " + fmt(model_scale);
  s += ", \"e2e_p50_ms\": " + fmt(e2e_p50_ms);
  s += ", \"e2e_p95_ms\": " + fmt(e2e_p95_ms);
  s += ", \"e2e_p99_ms\": " + fmt(e2e_p99_ms);
  s += ", \"slo_windows\": [";
  for (std::size_t i = 0; i < slo_windows.size(); ++i) {
    if (i > 0) s += ", ";
    s += slo_window_json(slo_windows[i]);
  }
  s += "]";
  s += ", \"batch_rows\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) s += ", ";
    s += "{\"batch_size\": " + std::to_string(rows[i].batch_size) +
         ", \"count\": " + std::to_string(rows[i].count) +
         ", \"mean_predicted_ms\": " + fmt(rows[i].mean_predicted_ms) +
         ", \"mean_measured_ms\": " + fmt(rows[i].mean_measured_ms) +
         ", \"model_ratio\": " + fmt(rows[i].model_ratio) + "}";
  }
  s += "], \"diagnoses\": [";
  for (std::size_t i = 0; i < diagnoses.size(); ++i) {
    if (i > 0) s += ", ";
    s += "\"" + json_escape(diagnoses[i]) + "\"";
  }
  s += "]}";
  return s;
}

}  // namespace ndirect::serve
