// Batch-latency prediction for model-driven batch sizing.
//
// The serving layer's central decision — "grow the batch, or launch
// now?" — is taken against a predicted forward-pass latency per batch
// size. GraphLatencyModel derives that prediction analytically from
// the FAI roofline model (platform/perf_model.h): each conv layer of
// the served graph is re-batched to N and its predicted GFLOPS turned
// into nanoseconds, so batch sizing is model-driven rather than
// heuristic (the batch grows exactly while the model says the
// tightest deadline in the batch survives). An EWMA calibration
// (observe()) folds measured batch wall times back into the scale so
// admission stays honest when the roofline over/undershoots the host.
//
// AffineLatencyModel is the deterministic stand-in for tests and
// synthetic benches: latency = base + per_item * batch, exactly.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "nn/graph.h"
#include "platform/perf_model.h"
#include "platform/specs.h"

namespace ndirect::serve {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// Predicted wall time of one forward pass at batch size `batch`
  /// (batch >= 1). Must be monotonically non-decreasing in `batch`.
  virtual std::uint64_t predict_ns(int batch) const = 0;

  /// Feedback hook: one batch of size `batch` measured `measured_ns`
  /// of wall time. Default: ignore (fixed models stay fixed).
  virtual void observe(int batch, std::uint64_t measured_ns) {
    (void)batch, (void)measured_ns;
  }
};

/// Exact affine model for tests/benches: base + per_item * batch.
class AffineLatencyModel final : public LatencyModel {
 public:
  AffineLatencyModel(std::uint64_t base_ns, std::uint64_t per_item_ns)
      : base_(base_ns), per_(per_item_ns) {}

  std::uint64_t predict_ns(int batch) const override {
    return base_ + per_ * static_cast<std::uint64_t>(batch);
  }

 private:
  std::uint64_t base_;
  std::uint64_t per_;
};

/// FAI-roofline-driven model for a served graph.
class GraphLatencyModel final : public LatencyModel {
 public:
  /// Extracts the conv layers of `graph` (any batch size; shapes are
  /// re-batched per query). Predictions are evaluated on `spec`
  /// (nullptr = the probed host_platform(), whose first call measures
  /// peak/bandwidth with microbenchmarks) using `threads` workers
  /// (0 = spec->cores). `fixed_overhead_ns` charges the per-forward
  /// non-conv + dispatch cost the roofline cannot see.
  explicit GraphLatencyModel(Graph& graph,
                             const PlatformSpec* spec = nullptr,
                             int threads = 0,
                             std::uint64_t fixed_overhead_ns = 200'000);

  std::uint64_t predict_ns(int batch) const override;

  /// EWMA-calibrate: scale <- 0.7*scale + 0.3*(measured/analytical),
  /// clamped to [0.05, 20] so one outlier batch cannot wedge admission
  /// into rejecting (or accepting) everything.
  void observe(int batch, std::uint64_t measured_ns) override;

  /// Current calibration factor (1.0 until the first observe()).
  double scale() const;

 private:
  std::uint64_t analytical_ns(int batch) const;  ///< unscaled, cached

  std::vector<ConvParams> convs_;
  const PlatformSpec* spec_;
  int threads_;
  std::uint64_t overhead_ns_;
  mutable std::mutex mu_;  ///< guards cache_ and scale_
  mutable std::map<int, std::uint64_t> cache_;
  double scale_ = 1.0;
};

}  // namespace ndirect::serve
