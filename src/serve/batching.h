// Model-driven batch sizing and deadline-aware admission.
//
// Pure functions of (queue state, time, latency model) — no locks, no
// threads, no clock reads — so the serving layer's decision logic is
// unit-testable with exact, synthetic inputs. The server calls these
// under its queue lock with Clock::now_ns(); the tests call them
// directly with hand-built queues and an AffineLatencyModel.
//
// Batch sizing (DESIGN.md §15): a batch is a FIFO prefix of the
// queue. Grow it while the model-predicted batch latency still meets
// the tightest deadline *in* the batch if launched now:
//
//     now + predict(k) <= min(deadline_1 .. deadline_k)
//
// Growing k raises predict(k) and can only tighten the min-deadline,
// so the feasible prefix is scanned front-to-back. A partial batch
// then lingers for more arrivals until the last instant the current
// members still make their tightest deadline — launch_at =
// tightest(k) - predict(k) — which is exactly "spend the whole
// latency budget on batching".
#pragma once

#include <cstddef>
#include <deque>

#include "serve/latency_model.h"
#include "serve/request_queue.h"

namespace ndirect::serve {

struct BatchPlan {
  int size = 0;  ///< requests to take from the queue front (0 = empty)
  /// Earliest instant the batch should launch: now when full /
  /// deadline-pressed / draining, later when lingering for arrivals.
  std::uint64_t launch_at = 0;
  std::uint64_t predicted_ns = 0;  ///< model latency at `size`
  /// Tightest deadline among the batch members (kNeverNs if none).
  std::uint64_t tightest_deadline_ns = kNeverNs;
};

/// Plan the next batch over the FIFO `pending` queue at time `now`.
/// Precondition: hopeless requests were already removed
/// (RequestQueue::take_expired), so the head request is feasible solo
/// and the planned size is >= 1 whenever the queue is non-empty.
/// `more_arrivals_possible` is false while draining (shutdown): the
/// plan then never lingers. `max_linger_ns` additionally caps the
/// linger at head-arrival + max_linger_ns. With no deadline and no
/// linger cap the batch launches immediately — requests are never
/// held hostage waiting for company they cannot name a budget for.
BatchPlan plan_batch(const std::deque<Request>& pending,
                     std::uint64_t now, int max_batch,
                     const LatencyModel& model,
                     bool more_arrivals_possible,
                     std::uint64_t max_linger_ns = kNeverNs);

/// Predicted completion time of a request arriving at `now` behind
/// `queue_depth` pending requests, with the earliest executor lane
/// free at `busy_free_at` (<= now when idle): the backlog runs as
/// full batches split across `executors` lanes, then the arriving
/// request rides the remainder batch.
std::uint64_t estimate_finish_ns(std::uint64_t now,
                                 std::size_t queue_depth,
                                 std::uint64_t busy_free_at,
                                 int max_batch, int executors,
                                 const LatencyModel& model);

/// Deadline-aware admission: accept iff the model predicts the
/// request can finish by `deadline_ns` (kNeverNs always admits).
bool admit(std::uint64_t now, std::uint64_t deadline_ns,
           std::size_t queue_depth, std::uint64_t busy_free_at,
           int max_batch, int executors, const LatencyModel& model);

}  // namespace ndirect::serve
