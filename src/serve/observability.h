// Serving-layer observability: registry instruments for the request
// path and a rolling-window SLO watchdog (DESIGN.md §16).
//
// ServeInstruments resolves every instrument the server's hot paths
// touch once, at server construction — submit/shed/complete then cost
// a handful of relaxed atomic ops against process-wide cells in
// runtime/metrics.h (scraped via NDIRECT_METRICS_FILE, SIGUSR2, or
// Server::metrics_text()). The `server` label keeps multiple tenants
// (one serve::Server per model) apart in one exposition; the batch-
// size-labelled histogram families make coalescing behaviour visible
// per size, not just on average.
//
// SloMonitor is the watchdog: it folds every request outcome into a
// ring of one-second slices (timestamps come from the server's Clock,
// so the whole thing is deterministic under VirtualClock) and answers
// goodput / p99 / shed-rate queries over rolling 1 s / 10 s / 60 s
// windows. evaluate() judges the windows against a configurable SLO
// and emits rule-based diagnoses in the ConvReport/ServeReport
// tradition — each one names the breach and the most likely cause the
// recorded evidence supports.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/metrics.h"
#include "serve/request_queue.h"

namespace ndirect::serve {

/// Handles into the global MetricsRegistry for one server instance,
/// resolved once (cold) so hot paths never touch the registry lock.
/// All cells are process-lifetime; copying the struct copies handles.
struct ServeInstruments {
  /// `server_name` becomes the {server="..."} label on every
  /// instrument; `max_batch` sizes the per-batch-size families.
  ServeInstruments(const std::string& server_name, int max_batch);

  CounterCell* submitted = nullptr;
  CounterCell* admitted = nullptr;
  CounterCell* served = nullptr;
  CounterCell* deadline_missed = nullptr;  ///< served but late
  CounterCell* failed = nullptr;
  CounterCell* batches = nullptr;
  /// One counter per ShedReason, indexed by static_cast<int>(reason).
  CounterCell* shed[3] = {};
  GaugeCell* queue_depth = nullptr;

  /// All durations in nanoseconds of the server's Clock.
  HistogramCell* queue_wait_ns = nullptr;
  HistogramCell* execute_ns = nullptr;  ///< batch forward wall time
  HistogramCell* e2e_ns = nullptr;      ///< arrival -> result delivered
  /// Slack clamped at zero: late requests land in bucket 0, and the
  /// companion deadline_missed counter carries the miss count.
  HistogramCell* deadline_slack_ns = nullptr;

  /// Per-batch-size families, indexed by batch size (entry 0 unused).
  std::vector<HistogramCell*> e2e_by_batch;
  std::vector<HistogramCell*> execute_by_batch;
};

/// The served/shed/latency SLO the watchdog judges windows against.
/// Zero-valued members disable their rule.
struct SloConfig {
  std::uint64_t target_p99_ns = 0;   ///< e2e p99 ceiling (0 = off)
  double min_goodput_fraction = 0;   ///< on-time / finished floor
  double max_shed_fraction = 1.0;    ///< shed / finished ceiling
};

/// Aggregate over one rolling window.
struct SloWindowStats {
  int window_s = 0;
  std::uint64_t served = 0;
  std::uint64_t on_time = 0;
  std::uint64_t shed = 0;
  std::uint64_t shed_by_reason[3] = {};
  std::uint64_t p99_ns = 0;  ///< e2e, 0 when nothing served

  std::uint64_t finished() const { return served + shed; }
  /// On-time fraction of everything that finished in the window.
  double goodput_fraction() const {
    return finished() > 0 ? static_cast<double>(on_time) /
                                static_cast<double>(finished())
                          : 1.0;
  }
  double shed_fraction() const {
    return finished() > 0 ? static_cast<double>(shed) /
                                static_cast<double>(finished())
                          : 0.0;
  }
};

/// Evidence the server hands evaluate() so breach diagnoses can name
/// a cause, not just a symptom.
struct SloEvidence {
  double model_ratio = 0;   ///< measured / predicted batch ns (0 = n/a)
  double model_scale = 0;   ///< EWMA calibration factor (0 = n/a)
  std::uint64_t filter_repacks = 0;  ///< graph-pool cold builds /
                                     ///< repacks since start
};

class SloMonitor {
 public:
  explicit SloMonitor(SloConfig config = {});

  /// Fold one served request finishing at `now_ns` with end-to-end
  /// latency `e2e_ns` into the window ring.
  void record_served(std::uint64_t now_ns, std::uint64_t e2e_ns,
                     bool on_time);
  /// Fold one shed request at `now_ns`.
  void record_shed(std::uint64_t now_ns, ShedReason reason);

  /// Rolling aggregate of the `window_s` seconds ending at `now_ns`
  /// (inclusive of the current second). window_s is clamped to the
  /// ring depth (64 s).
  SloWindowStats window(std::uint64_t now_ns, int window_s) const;

  /// Judge the 1 s / 10 s / 60 s windows against the SLO. Returns one
  /// diagnosis string per breached rule (deduplicated to the widest
  /// breached window per rule); empty = inside SLO.
  std::vector<std::string> evaluate(std::uint64_t now_ns,
                                    const SloEvidence& evidence) const;

  const SloConfig& config() const { return config_; }

  static constexpr int kRingSeconds = 64;
  static constexpr int kWindowsS[3] = {1, 10, 60};

 private:
  struct Slice {
    std::uint64_t second = ~std::uint64_t{0};  ///< absolute, stale guard
    std::uint64_t served = 0;
    std::uint64_t on_time = 0;
    std::uint64_t shed_by_reason[3] = {};
    HistogramSnapshot e2e;  ///< plain buckets, guarded by mu_
  };

  Slice& slice_at(std::uint64_t now_ns);  ///< requires mu_

  SloConfig config_;
  mutable std::mutex mu_;
  std::vector<Slice> ring_;
};

}  // namespace ndirect::serve
