#include "serve/server.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "runtime/metrics.h"
#include "runtime/shutdown.h"
#include "runtime/thread_pool.h"
#include "runtime/trace.h"
#include "serve/admin.h"

namespace ndirect::serve {

const char* serve_state_name(ServeState state) {
  switch (state) {
    case ServeState::kWarming: return "warming";
    case ServeState::kReady: return "ready";
    case ServeState::kDraining: return "draining";
    case ServeState::kStopped: return "stopped";
  }
  return "unknown";
}

namespace {

std::uint64_t saturating_add(std::uint64_t a, std::uint64_t b) {
  return a > kNeverNs - b ? kNeverNs : a + b;
}

ServerOptions normalized(ServerOptions o) {
  o.max_batch = std::max(1, o.max_batch);
  o.executors = std::max(1, o.executors);
  return o;
}

/// One zero-input forward so the graph plans its engines and fills its
/// packed-filter caches before real traffic (and real timing) hits it.
void warm_graph(Graph& g) {
  const TensorShape s = g.shape_of(0);
  Tensor zero({s.N, s.C, s.H, s.W}, Layout::NCHW);
  zero.fill_zero();
  (void)g.run(zero);
}

}  // namespace

Server::Server(GraphFactory factory, ServerOptions options)
    : factory_(std::move(factory)),
      options_(normalized(std::move(options))),
      clock_(options_.clock != nullptr ? options_.clock
                                       : &RealClock::instance()),
      model_(options_.model),
      pool_(options_.pool != nullptr ? options_.pool
                                     : &ThreadPool::global()),
      telemetry_(options_.executors + 1),
      slo_mon_(options_.slo) {
  if (!factory_)
    throw std::invalid_argument("serve::Server: null GraphFactory");
  // Visible to the admin plane from here on: /readyz answers 503
  // ("warming") for this server while the probe build and packed-
  // filter warm-up below are still running.
  register_live_server(this);
  try {
    // Build the batch-1 instance eagerly: it defines the accepted input
    // shape, seeds the default latency model, and pre-warms the most
    // common pool entry before the lanes start.
    std::unique_ptr<Graph> probe = factory_(1);
    if (!probe)
      throw std::invalid_argument(
          "serve::Server: GraphFactory returned null");
    probe->set_conv_pool(pool_);
    input_shape_ = probe->shape_of(0);
    if (input_shape_.N != 1)
      throw std::invalid_argument(
          "serve::Server: factory(1) built a graph with input batch " +
          std::to_string(input_shape_.N));
    if (model_ == nullptr) {
      owned_model_ = std::make_unique<GraphLatencyModel>(*probe);
      model_ = owned_model_.get();
    }
    if (options_.warmup) warm_graph(*probe);
    {
      std::lock_guard<std::mutex> g(graphs_mu_);
      free_graphs_[1].push_back(std::move(probe));
    }
    if (options_.observe)
      obs_ = std::make_unique<ServeInstruments>(options_.name,
                                                options_.max_batch);
    busy_until_.assign(static_cast<std::size_t>(options_.executors), 0);
    lanes_.reserve(static_cast<std::size_t>(options_.executors));
    for (int lane = 0; lane < options_.executors; ++lane)
      lanes_.emplace_back([this, lane] { executor_loop(lane); });
    // Drain at process exit *before* the metrics exporter and trace
    // ring shut down (the hook chain is LIFO and those register at
    // load time), so a server still live at exit never races the
    // exporters' teardown. The admin plane re-fronts its own hook on
    // register_live_server above, so it closes earlier still.
    exit_hook_ = register_exit_hook("serve-server",
                                    [this] { shutdown(/*drain=*/true); });
  } catch (...) {
    unregister_live_server(this);
    throw;
  }
  state_.store(ServeState::kReady, std::memory_order_release);
}

Server::~Server() {
  // Invisible to the admin plane first: after this no /readyz, /slo or
  // /report handler can still be iterating over a dying server
  // (unregister blocks while a handler holds the registry).
  unregister_live_server(this);
  // Drop the exit hook before tearing down: after this returns the
  // chain can no longer call into a dying server (and if the chain is
  // mid-run on another thread, unregister blocks until it finished).
  unregister_exit_hook(exit_hook_);
  shutdown(/*drain=*/true);
}

std::future<ServeResult> Server::submit(Tensor input,
                                        std::uint64_t deadline_budget_ns) {
  if (input.rank() != 4 || input.layout() != Layout::NCHW ||
      input.dim(0) != 1 || input.dim(1) != input_shape_.C ||
      input.dim(2) != input_shape_.H || input.dim(3) != input_shape_.W) {
    throw std::invalid_argument(
        "serve::Server::submit: input " + input.shape_string() +
        " does not match the served graph's [1, " +
        std::to_string(input_shape_.C) + ", " +
        std::to_string(input_shape_.H) + ", " +
        std::to_string(input_shape_.W) + "] NCHW input");
  }

  const std::uint64_t now = clock_->now_ns();
  Request r;
  r.input = std::move(input);
  r.arrival_ns = now;
  r.deadline_ns = deadline_budget_ns == kNeverNs
                      ? kNeverNs
                      : saturating_add(now, deadline_budget_ns);
  std::future<ServeResult> fut = r.promise.get_future();

  if (obs_) obs_->submitted->inc();
  {
    std::unique_lock<std::mutex> lk(queue_.mutex());
    ++stats_.submitted;
    // Ids are assigned in submit order to *every* request, shed or
    // served, so a shed request's trace instant still joins the
    // timeline by id.
    r.id = next_id_++;
    if (stopping_) {
      ++stats_.shed_shutdown;
      lk.unlock();
      shed(std::move(r), ShedReason::kShutdown, 0,
           Counter::kServeShedArrival);
      return fut;
    }
    if (options_.admission_control &&
        !admit(now, r.deadline_ns, queue_.size(), earliest_free_at(),
               options_.max_batch, options_.executors, *model_)) {
      ++stats_.shed_admission;
      lk.unlock();
      shed(std::move(r), ShedReason::kAdmission, 0,
           Counter::kServeShedArrival);
      return fut;
    }
    ++stats_.admitted;
    queue_.push(std::move(r));
    stats_.queued = queue_.size();
    if (obs_) {
      obs_->admitted->inc();
      obs_->queue_depth->set(static_cast<std::int64_t>(queue_.size()));
    }
  }
  telemetry_.add(0, Counter::kServeAdmitted, 1);
  if (trace_on()) TraceSession::global().instant("serve_enqueue");
  queue_.cv().notify_all();
  return fut;
}

void Server::executor_loop(int lane) {
  if (trace_on())
    set_trace_lane_name("serve-exec-" + std::to_string(lane));
  std::unique_lock<std::mutex> lk(queue_.mutex());
  for (;;) {
    const std::uint64_t now = clock_->now_ns();

    // 1) Shed everything that can no longer make its deadline even
    //    launched alone right now, then re-evaluate: the planner's
    //    head-is-feasible precondition depends on this running first.
    if (!queue_.empty()) {
      std::vector<Request> expired =
          queue_.take_expired(now, model_->predict_ns(1));
      if (!expired.empty()) {
        stats_.shed_expired += expired.size();
        stats_.queued = queue_.size();
        if (obs_)
          obs_->queue_depth->set(
              static_cast<std::int64_t>(queue_.size()));
        lk.unlock();
        for (Request& r : expired)
          shed(std::move(r), ShedReason::kDeadlineExpired, lane + 1,
               Counter::kServeShedQueue);
        lk.lock();
        continue;
      }
    }

    // 2) Idle: exit once stopping (drain leaves nothing behind by
    //    construction — the queue is empty), else park on the cv.
    if (queue_.empty()) {
      if (stopping_) return;
      clock_->wait_until(queue_.cv(), lk, kNeverNs);
      continue;
    }

    // 3) Plan a batch. While stopping no more arrivals are possible,
    //    so partial batches launch immediately (the drain path).
    const BatchPlan plan =
        plan_batch(queue_.pending(), now, options_.max_batch, *model_,
                   /*more_arrivals_possible=*/!stopping_,
                   options_.max_linger_ns);
    if (plan.size <= 0) {  // unreachable after expiry; stay safe
      clock_->wait_until(queue_.cv(), lk, kNeverNs);
      continue;
    }

    // 4) Linger for company: wait until the launch instant, a new
    //    arrival, or shutdown — then replan from scratch.
    if (plan.launch_at > now) {
      clock_->wait_until(queue_.cv(), lk, plan.launch_at);
      continue;
    }

    // 5) Launch.
    std::vector<Request> batch = queue_.pop_front(plan.size);
    busy_until_[static_cast<std::size_t>(lane)] =
        saturating_add(now, plan.predicted_ns);
    stats_.queued = queue_.size();
    if (obs_)
      obs_->queue_depth->set(static_cast<std::int64_t>(queue_.size()));
    lk.unlock();
    run_batch(lane, std::move(batch), plan, now);
    lk.lock();
    busy_until_[static_cast<std::size_t>(lane)] = 0;
  }
}

void Server::run_batch(int lane, std::vector<Request> batch,
                       const BatchPlan& plan, std::uint64_t launch_ns) {
  const int k = static_cast<int>(batch.size());
  const TensorShape& s = input_shape_;
  const std::size_t per_in =
      static_cast<std::size_t>(s.C) * static_cast<std::size_t>(s.H) *
      static_cast<std::size_t>(s.W);

  Tensor input({k, s.C, s.H, s.W}, Layout::NCHW);
  for (int i = 0; i < k; ++i)
    std::memcpy(input.data() + static_cast<std::size_t>(i) * per_in,
                batch[static_cast<std::size_t>(i)].input.data(),
                per_in * sizeof(float));

  const std::uint64_t head_id = batch.front().id;
  std::unique_ptr<Graph> graph;
  Tensor output;
  std::exception_ptr error;
  std::uint64_t measured = 0;
  const std::uint64_t exec_t0 = monotonic_ns();
  try {
    graph = acquire_graph(k);
    const std::uint64_t t0 = monotonic_ns();
    output = graph->run(input);
    measured = monotonic_ns() - t0;
  } catch (...) {
    error = std::current_exception();
  }
  if (trace_on()) {
    // Recorded as a complete ('X') span after the fact — a trace
    // session started mid-batch must never see an unmatched 'E'.
    TraceSession& ts = TraceSession::global();
    const std::uint64_t dur = monotonic_ns() - exec_t0;
    const std::uint64_t now = ts.now_ns();
    ts.complete("serve_execute", now > dur ? now - dur : 0, dur,
                "req", static_cast<std::int64_t>(head_id), "batch", k);
  }
  const std::uint64_t done = clock_->now_ns();

  if (error) {
    // The graph's state after a mid-run throw is unknown: drop the
    // instance instead of returning it to the pool, fail exactly the
    // requests that were in this batch, and keep serving.
    graph.reset();
    {
      std::lock_guard<std::mutex> g(queue_.mutex());
      stats_.failed += static_cast<std::uint64_t>(k);
    }
    if (obs_) obs_->failed->inc(static_cast<std::uint64_t>(k));
    for (Request& r : batch) r.promise.set_exception(error);
    return;
  }
  release_graph(k, std::move(graph));

  if (options_.calibrate) model_->observe(k, measured);
  telemetry_.add(lane + 1, Counter::kServeBatches, 1);
  if (obs_) {
    obs_->batches->inc();
    obs_->execute_ns->record(measured);
    obs_->execute_by_batch[static_cast<std::size_t>(k)]->record(
        measured);
  }
  if (trace_on()) {
    TraceSession& ts = TraceSession::global();
    const std::uint64_t end = ts.now_ns();
    ts.complete("serve_batch", end > measured ? end - measured : 0,
                measured, "batch", k, "req",
                static_cast<std::int64_t>(head_id));
  }

  // Slice the [k, ...] batch output into per-request [1, ...] tensors.
  const std::size_t per_out = output.size() / static_cast<std::size_t>(k);
  std::vector<std::int64_t> slice_dims = output.dims();
  slice_dims[0] = 1;

  std::uint64_t misses = 0;
  std::vector<ServeResult> results;
  results.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    const Request& r = batch[static_cast<std::size_t>(i)];
    ServeResult res;
    res.output = Tensor(slice_dims, output.layout());
    std::memcpy(res.output.data(),
                output.data() + static_cast<std::size_t>(i) * per_out,
                per_out * sizeof(float));
    res.stats.request_id = r.id;
    res.stats.arrival_ns = r.arrival_ns;
    res.stats.launch_ns = launch_ns;
    res.stats.done_ns = done;
    res.stats.queue_wait_ns =
        launch_ns > r.arrival_ns ? launch_ns - r.arrival_ns : 0;
    res.stats.batch_size = k;
    res.stats.deadline_slack_ns =
        r.deadline_ns == kNeverNs
            ? std::numeric_limits<std::int64_t>::max()
            : static_cast<std::int64_t>(r.deadline_ns) -
                  static_cast<std::int64_t>(done);
    const bool on_time =
        r.deadline_ns == kNeverNs || res.stats.deadline_slack_ns >= 0;
    if (!on_time) ++misses;
    res.stats.predicted_batch_ns = plan.predicted_ns;
    res.stats.measured_batch_ns = measured;

    const std::uint64_t e2e =
        done > r.arrival_ns ? done - r.arrival_ns : 0;
    slo_mon_.record_served(done, e2e, on_time);
    if (obs_) {
      obs_->served->inc();
      obs_->queue_wait_ns->record(res.stats.queue_wait_ns);
      obs_->e2e_ns->record(e2e);
      obs_->e2e_by_batch[static_cast<std::size_t>(k)]->record(e2e);
      if (r.deadline_ns != kNeverNs) {
        obs_->deadline_slack_ns->record(
            on_time ? static_cast<std::uint64_t>(
                          res.stats.deadline_slack_ns)
                    : 0);
        if (!on_time) obs_->deadline_missed->inc();
      }
    }
    if (trace_on()) {
      // Back-dated 'X' span covering the request's time in the queue;
      // the exporter sorts by timestamp, so out-of-order emission is
      // fine. Durations are clock_ nanoseconds mapped onto the trace
      // timeline ending "now".
      TraceSession& ts = TraceSession::global();
      const std::uint64_t tnow = ts.now_ns();
      const std::uint64_t wait = res.stats.queue_wait_ns;
      ts.complete("serve_queue", tnow > wait ? tnow - wait : 0, wait,
                  "req", static_cast<std::int64_t>(r.id), "batch", k);
    }
    results.push_back(std::move(res));
  }

  {
    std::lock_guard<std::mutex> g(queue_.mutex());
    ++stats_.batches;
    stats_.batched_requests += static_cast<std::uint64_t>(k);
    stats_.served += static_cast<std::uint64_t>(k);
    stats_.deadline_misses += misses;
    stats_.predicted_ns_sum += plan.predicted_ns;
    stats_.measured_ns_sum += measured;
    records_.push_back(
        BatchRecord{k, plan.predicted_ns, measured});
  }
  const std::uint64_t respond_t0 = monotonic_ns();
  for (int i = 0; i < k; ++i)
    batch[static_cast<std::size_t>(i)].promise.set_value(
        std::move(results[static_cast<std::size_t>(i)]));
  if (trace_on()) {
    TraceSession& ts = TraceSession::global();
    const std::uint64_t dur = monotonic_ns() - respond_t0;
    const std::uint64_t now = ts.now_ns();
    ts.complete("serve_respond", now > dur ? now - dur : 0, dur,
                "req", static_cast<std::int64_t>(head_id), "batch", k);
  }
}

void Server::shed(Request r, ShedReason reason, int slot, Counter c) {
  telemetry_.add(slot, c, 1);
  slo_mon_.record_shed(clock_->now_ns(), reason);
  if (obs_) obs_->shed[static_cast<int>(reason)]->inc();
  if (trace_on()) TraceSession::global().instant("serve_shed");
  r.promise.set_exception(std::make_exception_ptr(ShedError(reason)));
}

std::unique_ptr<Graph> Server::acquire_graph(int batch) {
  {
    std::lock_guard<std::mutex> g(graphs_mu_);
    auto it = free_graphs_.find(batch);
    if (it != free_graphs_.end() && !it->second.empty()) {
      std::unique_ptr<Graph> graph = std::move(it->second.back());
      it->second.pop_back();
      return graph;
    }
  }
  // Build outside the pool lock: graph construction (and its warm-up
  // forward) is the expensive part and other lanes must not stall on it.
  graph_builds_.fetch_add(1, std::memory_order_relaxed);
  std::unique_ptr<Graph> graph = factory_(batch);
  if (!graph)
    throw std::runtime_error("serve::Server: GraphFactory returned null");
  const TensorShape got = graph->shape_of(0);
  const TensorShape want{batch, input_shape_.C, input_shape_.H,
                         input_shape_.W};
  if (!(got == want))
    throw std::runtime_error(
        "serve::Server: factory(" + std::to_string(batch) +
        ") built input " + got.to_string() + ", expected " +
        want.to_string());
  graph->set_conv_pool(pool_);
  if (options_.warmup) warm_graph(*graph);
  return graph;
}

void Server::release_graph(int batch, std::unique_ptr<Graph> graph) {
  std::lock_guard<std::mutex> g(graphs_mu_);
  free_graphs_[batch].push_back(std::move(graph));
}

std::uint64_t Server::earliest_free_at() const {
  std::uint64_t earliest = 0;
  bool first = true;
  for (const std::uint64_t b : busy_until_) {
    earliest = first ? b : std::min(earliest, b);
    first = false;
  }
  return earliest;  // 0 (= "free now") when any lane is idle
}

void Server::shutdown(bool drain) {
  // kStopped never regresses to kDraining on a repeated shutdown call.
  ServeState expected = ServeState::kReady;
  if (!state_.compare_exchange_strong(expected, ServeState::kDraining,
                                      std::memory_order_acq_rel)) {
    expected = ServeState::kWarming;
    state_.compare_exchange_strong(expected, ServeState::kDraining,
                                   std::memory_order_acq_rel);
  }
  std::vector<Request> dropped;
  {
    std::lock_guard<std::mutex> lk(queue_.mutex());
    stopping_ = true;
    drain_on_stop_ = drain;
    if (!drain) {
      dropped = queue_.drain();
      stats_.shed_shutdown += dropped.size();
      stats_.queued = 0;
    }
  }
  queue_.cv().notify_all();
  for (Request& r : dropped)
    shed(std::move(r), ShedReason::kShutdown, 0,
         Counter::kServeShedQueue);
  std::lock_guard<std::mutex> g(join_mu_);
  for (std::thread& t : lanes_)
    if (t.joinable()) t.join();
  // The queue's cv dies with this server; a VirtualClock may outlive
  // it (tests own both), so drop the registration before that.
  clock_->unregister_waiter(&queue_.cv());
  state_.store(ServeState::kStopped, std::memory_order_release);
}

ServerStatsSnapshot Server::stats() const {
  std::lock_guard<std::mutex> lk(queue_.mutex());
  ServerStatsSnapshot snap = stats_;
  snap.queued = queue_.size();
  return snap;
}

std::vector<Server::BatchRecord> Server::batch_records() const {
  std::lock_guard<std::mutex> lk(queue_.mutex());
  return records_;
}

std::string Server::metrics_text() const {
  return MetricsRegistry::global().text();
}

SloEvidence Server::slo_evidence() const {
  SloEvidence ev;
  {
    std::lock_guard<std::mutex> lk(queue_.mutex());
    if (stats_.predicted_ns_sum > 0)
      ev.model_ratio =
          static_cast<double>(stats_.measured_ns_sum) /
          static_cast<double>(stats_.predicted_ns_sum);
  }
  if (const auto* g = dynamic_cast<const GraphLatencyModel*>(model_))
    ev.model_scale = g->scale();
  ev.filter_repacks = graph_builds_.load(std::memory_order_relaxed);
  return ev;
}

}  // namespace ndirect::serve
