// HTTP admin plane: live scrape, health/readiness, SLO and trace
// endpoints over the embedded HTTP server (DESIGN.md §17).
//
// AdminServer mounts the whole observability stack on runtime/http.h:
//
//   GET  /metrics      OpenMetrics text from the live registry
//                      (application/openmetrics-text version header)
//   GET  /healthz      liveness: 200 "ok" while the process responds
//   GET  /readyz       readiness: 200 only when every live
//                      serve::Server is kReady (packed filters warmed,
//                      not draining); 503 with a per-server state body
//                      while warming, draining, stopped, or when no
//                      server is registered yet
//   GET  /slo          SloMonitor rolling windows + attributed breach
//                      diagnoses per server, as JSON
//   GET  /report       ServeReport JSON per server (warming servers
//                      are listed but carry no report yet)
//   POST /trace/start  begin a TraceSession on the global ring
//                      (?events=N sizes the ring)
//   POST /trace/stop   stop the session and return the chrome-trace
//                      JSON body
//
// Servers become visible through a process-wide live-server registry:
// serve::Server registers itself at the *top* of its constructor (so
// /readyz reports "warming" during the packed-filter warm-up) and
// unregisters at the top of its destructor (unregistration blocks
// while a handler is iterating, so a handler never touches a dying
// server).
//
// Exit ordering rides the runtime/shutdown.h hook chain: the admin
// server re-fronts its hook whenever a new serve::Server registers,
// so at process exit the admin transport closes *before* servers
// drain — no scrape can observe a half-drained process.
//
// NDIRECT_ADMIN_PORT=<port> autostarts the global AdminServer at load
// time (0 = ephemeral; the bound port is printed to stderr), binds to
// NDIRECT_ADMIN_BIND (default 127.0.0.1), and installs the
// SIGTERM/SIGINT graceful-shutdown handlers (runtime/shutdown.h) —
// the full fleet-deployment surface with zero code changes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "runtime/http.h"

namespace ndirect::serve {

class Server;

struct AdminOptions {
  std::string bind_address = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; read the bound port with port()
  int handler_threads = 2;
};

class AdminServer {
 public:
  /// The process-wide instance (what NDIRECT_ADMIN_PORT starts and
  /// what live servers re-front the exit hook of). Tests may also
  /// construct private instances.
  static AdminServer& global();

  AdminServer() = default;
  ~AdminServer();  ///< stop()

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Bind and serve the admin routes. Idempotent while running.
  /// Throws std::runtime_error when the address cannot be bound.
  void start(AdminOptions options = {});

  /// Close the transport and join its threads. Idempotent; safe from
  /// exit hooks and concurrent callers.
  void stop();

  bool running() const;
  int port() const;  ///< bound port, 0 when not running

  /// Re-register this admin server's exit hook so it runs before any
  /// hook registered earlier (the chain is LIFO). Called by
  /// register_live_server for the global instance; harmless no-op
  /// when not running.
  void refresh_exit_hook();

  /// Requests answered since start (transport-level; test hook).
  std::uint64_t requests_handled() const;

 private:
  void mount_routes(HttpServer& http);

  mutable std::mutex mu_;
  std::unique_ptr<HttpServer> http_;
  std::uint64_t exit_hook_ = 0;  ///< 0 = none registered
};

// ---------------------------------------------------------------------------
// Live-server registry: the process-wide set of serve::Server
// instances the admin endpoints report over.
// ---------------------------------------------------------------------------

/// Add `s` to the registry (serve::Server constructor). Also re-fronts
/// the global AdminServer's exit hook so the admin transport closes
/// before this server's drain hook runs at exit.
void register_live_server(Server* s);

/// Remove `s`. Blocks until no admin handler is still iterating the
/// registry, so the caller may destroy `s` immediately after.
void unregister_live_server(Server* s);

/// Run `fn` once per live server, in registration order, holding the
/// registry lock (servers cannot unregister mid-iteration; keep `fn`
/// cheap). The admin handlers and tests use this.
void for_each_live_server(const std::function<void(Server&)>& fn);

std::size_t live_server_count();

}  // namespace ndirect::serve
