#include "serve/latency_model.h"

#include <algorithm>
#include <cmath>

namespace ndirect::serve {

GraphLatencyModel::GraphLatencyModel(Graph& graph,
                                     const PlatformSpec* spec,
                                     int threads,
                                     std::uint64_t fixed_overhead_ns)
    : spec_(spec != nullptr ? spec : &host_platform()),
      threads_(threads > 0 ? threads : 0),
      overhead_ns_(fixed_overhead_ns) {
  if (threads_ == 0) threads_ = spec_->cores;
  for (const ConvOp* op : graph.conv_ops()) {
    convs_.push_back(op->params());
  }
}

std::uint64_t GraphLatencyModel::analytical_ns(int batch) const {
  // Caller holds mu_.
  const auto it = cache_.find(batch);
  if (it != cache_.end()) return it->second;
  double ns = static_cast<double>(overhead_ns_);
  for (ConvParams p : convs_) {
    p.N = batch;
    const PerfEstimate est =
        estimate_conv_perf(*spec_, p, ConvMethod::Ndirect, threads_);
    if (est.gflops > 0) {
      // flops / (gflops * 1e9 flops/s) seconds = flops / gflops ns.
      ns += static_cast<double>(p.flops()) / est.gflops;
    }
  }
  const auto v = static_cast<std::uint64_t>(std::llround(ns));
  cache_.emplace(batch, v);
  return v;
}

std::uint64_t GraphLatencyModel::predict_ns(int batch) const {
  std::lock_guard<std::mutex> g(mu_);
  const double v = scale_ * static_cast<double>(analytical_ns(batch));
  return static_cast<std::uint64_t>(std::llround(v));
}

void GraphLatencyModel::observe(int batch, std::uint64_t measured_ns) {
  std::lock_guard<std::mutex> g(mu_);
  const std::uint64_t raw = analytical_ns(batch);
  if (raw == 0 || measured_ns == 0) return;
  const double ratio =
      static_cast<double>(measured_ns) / static_cast<double>(raw);
  scale_ = std::clamp(0.7 * scale_ + 0.3 * ratio, 0.05, 20.0);
}

double GraphLatencyModel::scale() const {
  std::lock_guard<std::mutex> g(mu_);
  return scale_;
}

}  // namespace ndirect::serve
