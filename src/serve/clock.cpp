#include "serve/clock.h"

#include <algorithm>
#include <chrono>

#include "runtime/telemetry.h"

namespace ndirect::serve {

// ---------------------------------------------------------------------------
// RealClock
// ---------------------------------------------------------------------------

std::uint64_t RealClock::now_ns() const { return monotonic_ns(); }

void RealClock::wait_until(std::condition_variable& cv,
                           std::unique_lock<std::mutex>& lk,
                           std::uint64_t t_ns) {
  if (t_ns == kNeverNs) {
    cv.wait(lk);
    return;
  }
  const std::uint64_t now = now_ns();
  if (t_ns <= now) return;
  cv.wait_for(lk, std::chrono::nanoseconds(t_ns - now));
}

RealClock& RealClock::instance() {
  static RealClock clock;
  return clock;
}

// ---------------------------------------------------------------------------
// VirtualClock
// ---------------------------------------------------------------------------

void VirtualClock::register_waiter(std::condition_variable* cv,
                                   std::mutex* mu) {
  std::lock_guard<std::mutex> g(mu_);
  for (const auto& [c, m] : waiters_) {
    if (c == cv && m == mu) return;
  }
  waiters_.emplace_back(cv, mu);
}

void VirtualClock::wait_until(std::condition_variable& cv,
                              std::unique_lock<std::mutex>& lk,
                              std::uint64_t t_ns) {
  // Register BEFORE reading the time. An advance() stores the new time
  // first and snapshots the registry second, so either this waiter is
  // in the snapshot (and gets the mutex-handshake notify below) or its
  // registration happened after the snapshot — in which case the time
  // read here already sees the advanced value and we return without
  // waiting. Either way the wakeup cannot be lost.
  register_waiter(&cv, lk.mutex());
  if (now_ns() >= t_ns) return;
  cv.wait(lk);
}

void VirtualClock::set(std::uint64_t t_ns) {
  // Monotonic publish of the new time (concurrent setters race to the
  // max, never backwards).
  std::uint64_t prev = now_.load(std::memory_order_seq_cst);
  while (prev < t_ns &&
         !now_.compare_exchange_weak(prev, t_ns,
                                     std::memory_order_seq_cst)) {
  }

  // Snapshot the registry, then handshake-notify each waiter: briefly
  // acquiring the waiter's mutex guarantees any thread that read the
  // old time under that mutex has since released it inside cv.wait —
  // so the notify below is observed, never dropped between a waiter's
  // time check and its wait.
  // The pass is counted so unregister_waiter can wait for the snapshot
  // to go out of use before its caller destroys the cv it names.
  std::vector<std::pair<std::condition_variable*, std::mutex*>> snapshot;
  {
    std::lock_guard<std::mutex> g(mu_);
    ++notify_passes_;
    snapshot = waiters_;
  }
  for (auto& [cv, mu] : snapshot) {
    { std::lock_guard<std::mutex> g(*mu); }
    cv->notify_all();
  }
  {
    std::lock_guard<std::mutex> g(mu_);
    --notify_passes_;
  }
  drained_.notify_all();
}

void VirtualClock::unregister_waiter(std::condition_variable* cv) {
  std::unique_lock<std::mutex> g(mu_);
  waiters_.erase(std::remove_if(waiters_.begin(), waiters_.end(),
                                [cv](const auto& w) {
                                  return w.first == cv;
                                }),
                 waiters_.end());
  // A pass snapshotted before the erase may still be about to notify
  // this cv; it cannot be destroyed until those passes finish.
  drained_.wait(g, [this] { return notify_passes_ == 0; });
}

void VirtualClock::advance(std::uint64_t delta_ns) {
  set(now_.load(std::memory_order_seq_cst) + delta_ns);
}

}  // namespace ndirect::serve
