#!/usr/bin/env python3
"""Gate the micro-kernel policy registry's compile-time budget.

The registry generates every Eq. 3-feasible kernel from templates, so a
careless change (a new policy axis, an accidental O(grid^2) fold, an
instantiation that defeats the per-S translation-unit split) shows up
first as compile time. This script fails CI when either

  1. any microkernel_policies_s*.cpp takes longer than --max-seconds to
     compile stand-alone (each TU holds one kernel width's ~56
     instantiations; the budget is several times the measured ~15 s so
     only real blow-ups trip it), or
  2. the built registry shrinks below --min-entries kernel entries or
     --min-blocks runtime (vw, vk) blocks — i.e. a refactor silently
     dropped specializations and convs would fall back to the generic
     kernel.

The registry count is probed by compiling and running a 5-line program
against the built libndirect_core.a, so it measures the product, not
the source.

Usage:
  check_kernel_budget.py [--source .] [--build build]
                         [--max-seconds 90] [--min-entries 216]
                         [--min-blocks 14] [--cxx g++]
                         [--flags "-O3 -march=native -std=c++20"]
"""
import argparse
import glob
import os
import subprocess
import sys
import tempfile
import time

PROBE = """
#include <cstdio>
#include "core/microkernel.h"
int main() {
  std::printf("entries=%zu blocks=%zu\\n",
              ndirect::kernel_registry().size(),
              ndirect::microkernel_blocks().size());
  return 0;
}
"""


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--source", default=".")
    ap.add_argument("--build", default="build")
    ap.add_argument("--max-seconds", type=float, default=90.0,
                    help="per-TU compile budget")
    ap.add_argument("--min-entries", type=int, default=216)
    ap.add_argument("--min-blocks", type=int, default=14)
    ap.add_argument("--cxx", default=os.environ.get("CXX", "g++"))
    ap.add_argument("--flags", default="-O3 -march=native -std=c++20")
    args = ap.parse_args()

    src = os.path.abspath(args.source)
    build = os.path.abspath(args.build)
    tus = sorted(
        glob.glob(os.path.join(src, "src/core/microkernel_policies_s*.cpp")))
    if not tus:
        print("check_kernel_budget: no policy TUs found under", src)
        return 1

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        # 1. Per-TU compile-time budget.
        for tu in tus:
            out = os.path.join(tmp, os.path.basename(tu) + ".o")
            cmd = [args.cxx, *args.flags.split(), "-DNDEBUG",
                   "-I", os.path.join(src, "src"), "-c", tu, "-o", out]
            t0 = time.monotonic()
            r = subprocess.run(cmd, capture_output=True, text=True)
            dt = time.monotonic() - t0
            if r.returncode != 0:
                failures.append(f"{os.path.basename(tu)}: compile failed\n"
                                + r.stderr[-2000:])
                continue
            status = "ok" if dt <= args.max_seconds else "OVER BUDGET"
            print(f"  {os.path.basename(tu):34s} {dt:6.1f}s "
                  f"(budget {args.max_seconds:.0f}s) {status}")
            if dt > args.max_seconds:
                failures.append(
                    f"{os.path.basename(tu)}: {dt:.1f}s exceeds the "
                    f"{args.max_seconds:.0f}s budget")

        # 2. Registry completeness, probed from the built core library.
        core = os.path.join(build, "src/core/libndirect_core.a")
        runtime = os.path.join(build, "src/runtime/libndirect_runtime.a")
        if not os.path.exists(core):
            failures.append(f"missing {core} (build ndirect_core first)")
        else:
            probe_src = os.path.join(tmp, "probe.cpp")
            probe_bin = os.path.join(tmp, "probe")
            with open(probe_src, "w") as f:
                f.write(PROBE)
            cmd = [args.cxx, *args.flags.split(),
                   "-I", os.path.join(src, "src"), probe_src, core]
            if os.path.exists(runtime):
                cmd.append(runtime)
            cmd += ["-o", probe_bin]
            r = subprocess.run(cmd, capture_output=True, text=True)
            if r.returncode != 0:
                failures.append("registry probe failed to link:\n"
                                + r.stderr[-2000:])
            else:
                out = subprocess.run([probe_bin], capture_output=True,
                                     text=True).stdout.strip()
                print(f"  registry probe: {out}")
                vals = dict(kv.split("=") for kv in out.split())
                entries = int(vals.get("entries", 0))
                blocks = int(vals.get("blocks", 0))
                if entries < args.min_entries:
                    failures.append(f"registry has {entries} entries, "
                                    f"expected >= {args.min_entries}")
                if blocks < args.min_blocks:
                    failures.append(f"runtime table has {blocks} blocks, "
                                    f"expected >= {args.min_blocks}")

    if failures:
        print("check_kernel_budget: FAIL")
        for f in failures:
            print("  -", f)
        return 1
    print("check_kernel_budget: OK "
          f"({len(tus)} TUs within {args.max_seconds:.0f}s each)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
