#!/usr/bin/env bash
# Run the bench smoke set and collect their BENCH_*.json outputs into
# one directory (via NDIRECT_BENCH_DIR) for bench_compare.py.
#
# Usage: run_bench_suite.sh [--smoke] [--build <dir>] [--out <dir>]
#   --smoke   short measurement windows (NDIRECT_BENCH_MS=50 unless the
#             caller already set it) — CI noise-gate mode, not paper runs
#   --build   cmake build directory holding bench/ (default: build)
#   --out     where the JSON lands (default: bench-results)
set -euo pipefail

BUILD=build
OUT=bench-results
SMOKE=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) SMOKE=1; shift ;;
    --build) BUILD="$2"; shift 2 ;;
    --out) OUT="$2"; shift 2 ;;
    *)
      echo "usage: $0 [--smoke] [--build <dir>] [--out <dir>]" >&2
      exit 2
      ;;
  esac
done

# The smoke set: quick, deterministic-shape benches that exercise the
# scheduler, the dispatch overhead path, the graph executor and the
# metrics plane (instrument record cost + observe-on/off serving
# overhead). The figure benches (paper-scale sweeps) are intentionally
# not gated.
BENCHES=(bench_scheduler bench_dispatch bench_graph bench_microkernel
         bench_dtypes bench_metrics)

mkdir -p "$OUT"
NDIRECT_BENCH_DIR="$(cd "$OUT" && pwd)"
export NDIRECT_BENCH_DIR
if [[ "$SMOKE" == 1 ]]; then
  export NDIRECT_BENCH_MS="${NDIRECT_BENCH_MS:-50}"
fi

for b in "${BENCHES[@]}"; do
  exe="$BUILD/bench/$b"
  if [[ ! -x "$exe" ]]; then
    echo "run_bench_suite: missing $exe (build the bench targets first)" >&2
    exit 1
  fi
  echo "== $b =="
  "$exe"
done

echo
echo "run_bench_suite: results in $NDIRECT_BENCH_DIR:"
ls -1 "$NDIRECT_BENCH_DIR"
