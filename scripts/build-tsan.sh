#!/usr/bin/env bash
# One-command ThreadSanitizer pass over the threading-labelled suite
# (scheduler, thread pool, engine): configure build-tsan/, build it, and
# run `ctest -L threading` with halt_on_error. Equivalent to
# `cmake --workflow --preset tsan`; kept as a script so CI and shells
# without preset support can call it the same way.
set -euo pipefail
cd "$(dirname "$0")/.."
cmake --workflow --preset tsan "$@"
