#!/usr/bin/env python3
"""Gate bench results against committed per-host baselines.

Each BENCH_*.json carries a "host" object whose "key" identifies the
machine that produced it (sanitized CPU model + core count, from
bench_util's host_key()). Baselines live in bench/baselines/<key>/ as
files with the same names; a result is only ever compared against a
baseline from the *same* host key, so laptops, CI runners and the
paper's ARM boards never gate each other.

Metrics: every numeric leaf whose name contains "gflops" or "goodput"
or ends in "_qps" is compared higher-is-better; with --latency, leaves
ending in _us/_ms/_ns, bare percentile leaves (p50/p95/p99), and
wall_seconds are additionally compared lower-is-better. A change worse
than --threshold (relative, default 0.25 — smoke-mode runs are noisy)
is a regression and the script exits 1. Hosts or benches with no
committed baseline are reported and skipped (exit 0): a new machine
gates nothing until someone commits its baseline with --update.

Usage:
  bench_compare.py --results <dir> [--baselines bench/baselines]
                   [--threshold 0.25] [--latency]
  bench_compare.py --results <dir> --update   # (re)write baselines
  bench_compare.py --self-test                # verify the gate trips
"""
import argparse
import json
import re
import shutil
import sys
import tempfile
from pathlib import Path


def flatten(node, prefix=""):
    """Numeric leaves of a JSON tree as {dotted.path: float}.

    List elements are labelled by their "case"/"name"/"method"/"layer"
    field when present (stable across reordering), else by index. The
    top-level "host" object is identity, not a metric, and is skipped.
    """
    items = {}
    if isinstance(node, dict):
        for key, value in node.items():
            if prefix == "" and key == "host":
                continue
            items.update(flatten(value, prefix + str(key) + "."))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            label = str(i)
            if isinstance(value, dict):
                for name_key in ("case", "name", "method", "layer"):
                    if isinstance(value.get(name_key), str):
                        label = value[name_key]
                        break
            items.update(flatten(value, prefix + label + "."))
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        items[prefix[:-1]] = float(node)
    return items


def metric_direction(key, include_latency):
    """'higher', 'lower', or None when the metric is not gated.

    Latency metrics may nest percentiles under the named series
    ("round_trip_spin_us.p50"), so every path segment is checked for
    the unit suffix, not just the leaf. A bare percentile leaf
    ("p50"/"p95"/"p99") with no unit anywhere on its path is still a
    latency metric — the serving bench reports percentile rows that
    way.
    """
    leaf = key.rsplit(".", 1)[-1]
    if "gflops" in leaf or "goodput" in leaf or leaf.endswith("_qps"):
        return "higher"
    if include_latency and (
        any(seg.endswith(("_us", "_ms", "_ns")) for seg in key.split("."))
        or re.fullmatch(r"p\d{2,3}", leaf)
        or leaf == "wall_seconds"
    ):
        return "lower"
    return None


def compare_files(baseline_path, current_path, threshold, include_latency):
    """Returns (regressions, compared_count).

    A regression is (key, baseline, current, relative_change) with
    relative_change > threshold in the bad direction.
    """
    with open(baseline_path) as f:
        base = flatten(json.load(f))
    with open(current_path) as f:
        cur = flatten(json.load(f))

    regressions = []
    compared = 0
    for key, base_v in sorted(base.items()):
        direction = metric_direction(key, include_latency)
        if direction is None or key not in cur or base_v <= 0:
            continue
        cur_v = cur[key]
        compared += 1
        if direction == "higher":
            change = (base_v - cur_v) / base_v  # >0 means slower
        else:
            change = (cur_v - base_v) / base_v  # >0 means slower
        if change > threshold:
            regressions.append((key, base_v, cur_v, change))
    return regressions, compared


def host_key_of(path):
    try:
        with open(path) as f:
            doc = json.load(f)
        key = doc.get("host", {}).get("key")
        return key if isinstance(key, str) and key else None
    except (OSError, json.JSONDecodeError):
        return None


def run_compare(args):
    results = sorted(Path(args.results).glob("BENCH_*.json"))
    if not results:
        print(f"bench_compare: no BENCH_*.json under {args.results}",
              file=sys.stderr)
        return 2

    baselines = Path(args.baselines)
    failed = False
    for current in results:
        key = host_key_of(current)
        if key is None:
            print(f"  {current.name}: no host key (old format?) -- skipped")
            continue
        baseline = baselines / key / current.name

        if args.update:
            baseline.parent.mkdir(parents=True, exist_ok=True)
            shutil.copyfile(current, baseline)
            print(f"  {current.name}: baseline updated "
                  f"({baseline})")
            continue

        if not baseline.is_file():
            print(f"  {current.name}: no baseline for host '{key}' -- "
                  f"skipped (commit one with --update)")
            continue

        regressions, compared = compare_files(
            baseline, current, args.threshold, args.latency)
        if regressions:
            failed = True
            print(f"  {current.name}: REGRESSION "
                  f"({len(regressions)}/{compared} gated metrics)")
            for key_name, base_v, cur_v, change in regressions:
                print(f"    {key_name}: {base_v:.3f} -> {cur_v:.3f} "
                      f"({change:+.0%} worse than threshold "
                      f"{args.threshold:.0%})")
        else:
            print(f"  {current.name}: ok ({compared} gated metrics "
                  f"within {args.threshold:.0%})")
    if failed:
        print("bench_compare: FAIL", file=sys.stderr)
        return 1
    print("bench_compare: OK")
    return 0


def run_self_test():
    """Verify the gate trips on an injected slowdown and not otherwise."""
    base_doc = {
        "host": {"key": "self-test-host-1c", "cores": 1},
        "peak_gflops": 100.0,
        "cases": [
            {"case": "a", "stealing_gflops": 50.0, "latency_us": 10.0},
            {"case": "b", "stealing_gflops": 80.0, "latency_us": 12.0},
        ],
    }
    slow_doc = json.loads(json.dumps(base_doc))
    slow_doc["cases"][0]["stealing_gflops"] = 30.0  # -40% injected

    # Serving-shaped doc: goodput gated unconditionally (higher-better),
    # bare percentile leaves (no unit suffix anywhere on the path) gated
    # lower-better only under --latency.
    serve_doc = {
        "host": {"key": "self-test-host-1c", "cores": 1},
        "goodput_ratio_batched_vs_single": 2.0,
        "cases": [
            {"case": "batched", "goodput_qps": 90.0,
             "latency": {"p50": 2.0, "p99": 8.0}},
        ],
    }
    shed_doc = json.loads(json.dumps(serve_doc))
    shed_doc["cases"][0]["goodput_qps"] = 50.0  # -44% goodput
    tail_doc = json.loads(json.dumps(serve_doc))
    tail_doc["cases"][0]["latency"]["p99"] = 13.0  # +62% p99

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        (tmp / "baselines" / "self-test-host-1c").mkdir(parents=True)
        (tmp / "results").mkdir()
        with open(tmp / "baselines" / "self-test-host-1c" /
                  "BENCH_selftest.json", "w") as f:
            json.dump(base_doc, f)

        def run_with(doc, threshold, name="BENCH_selftest.json",
                     baseline=None, latency=False):
            if baseline is not None:
                with open(tmp / "baselines" / "self-test-host-1c" /
                          name, "w") as f:
                    json.dump(baseline, f)
            with open(tmp / "results" / name, "w") as f:
                json.dump(doc, f)
            try:
                ns = argparse.Namespace(
                    results=str(tmp / "results"),
                    baselines=str(tmp / "baselines"),
                    threshold=threshold, latency=latency, update=False)
                return run_compare(ns)
            finally:
                (tmp / "results" / name).unlink()

        checks = [
            ("identical run passes", run_with(base_doc, 0.25) == 0),
            ("-40% slowdown trips the 25% gate",
             run_with(slow_doc, 0.25) == 1),
            ("-40% slowdown passes a 50% gate",
             run_with(slow_doc, 0.50) == 0),
            ("identical serving run passes under --latency",
             run_with(serve_doc, 0.25, name="BENCH_serveself.json",
                      baseline=serve_doc, latency=True) == 0),
            ("-44% goodput trips the 25% gate without --latency",
             run_with(shed_doc, 0.25,
                      name="BENCH_serveself.json") == 1),
            ("+62% bare-p99 trips the 50% gate under --latency",
             run_with(tail_doc, 0.50, name="BENCH_serveself.json",
                      latency=True) == 1),
            ("+62% bare-p99 is ignored without --latency",
             run_with(tail_doc, 0.50,
                      name="BENCH_serveself.json") == 0),
        ]
    ok = all(passed for _, passed in checks)
    for name, passed in checks:
        print(f"self-test: {'ok' if passed else 'FAIL'}: {name}")
    print(f"bench_compare --self-test: {'OK' if ok else 'FAIL'}")
    return 0 if ok else 1


def main():
    ap = argparse.ArgumentParser(
        description="Diff BENCH_*.json against per-host baselines")
    ap.add_argument("--results", default="bench-results",
                    help="directory of freshly produced BENCH_*.json")
    ap.add_argument("--baselines", default="bench/baselines",
                    help="committed baseline root (per-host subdirs)")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="relative slowdown that fails the gate")
    ap.add_argument("--latency", action="store_true",
                    help="also gate _us/_ms/_ns and wall_seconds "
                         "metrics (lower is better)")
    ap.add_argument("--update", action="store_true",
                    help="write current results as the host's baseline")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate logic on synthetic data")
    args = ap.parse_args()

    if args.self_test:
        sys.exit(run_self_test())
    sys.exit(run_compare(args))


if __name__ == "__main__":
    main()
