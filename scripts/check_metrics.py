#!/usr/bin/env python3
"""Validate an OpenMetrics text exposition produced by the metrics
registry (MetricsRegistry::text(), dumped via NDIRECT_METRICS_FILE or
Server::metrics_text()).

Checks what a Prometheus scraper would silently mis-ingest but a
correct exporter must guarantee:
  * the document terminates with exactly one '# EOF' line,
  * every sample line parses and belongs to the family block opened by
    the preceding '# TYPE' line (no family interleaving),
  * '# TYPE' declares counter/gauge/histogram; counter samples are
    named <family>_total, histogram samples <family>_bucket/_count/_sum,
  * per histogram label set: bucket 'le' bounds strictly increase,
    cumulative counts are non-decreasing, the mandatory '+Inf' bucket
    is present and equals the '_count' sample,
  * counter and histogram sample values are non-negative integers.

A golden schema of families the serving/engine planes must export can
be enforced with --require (repeatable):

  check_metrics.py dump.prom \
      --require ndirect_serve_requests:counter \
      --require ndirect_serve_e2e_ns:histogram

The exposition can also be scraped live from the admin plane
(serve/admin.h's GET /metrics) instead of read from a file:

  check_metrics.py --url http://localhost:9900/metrics --require ...

Exit status 0 on a valid exposition, 1 with a diagnostic otherwise.
"""
import argparse
import re
import sys
import urllib.request

SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"      # metric name
    r"(\{.*\})?"                        # optional label set
    r" (\+Inf|-?[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?)$"
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def fail(msg):
    print(f"check_metrics: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def parse_labels(raw):
    """Label string '{a="x",b="y"}' -> sorted tuple of (name, value)."""
    if not raw:
        return ()
    return tuple(sorted(LABEL_RE.findall(raw)))


def split_family(name, families):
    """Family the sample `name` belongs to, plus its suffix.

    Longest-match against declared families so ndirect_x_bucket
    resolves to family ndirect_x even when ndirect_x_bucket is not
    itself declared.
    """
    for fam in sorted(families, key=len, reverse=True):
        if name == fam:
            return fam, ""
        for suffix in ("_total", "_bucket", "_count", "_sum"):
            if name == fam + suffix:
                return fam, suffix
    return None, None


def main():
    ap = argparse.ArgumentParser(
        description="Validate an OpenMetrics exposition")
    ap.add_argument("path", nargs="?",
                    help="exposition file (omit with --url)")
    ap.add_argument(
        "--url", metavar="URL",
        help="scrape the exposition from a live admin endpoint "
             "instead of a file")
    ap.add_argument(
        "--require", action="append", default=[], metavar="FAMILY[:TYPE]",
        help="fail unless this family is present (and of this type)")
    args = ap.parse_args()

    if bool(args.url) == bool(args.path):
        ap.error("exactly one of PATH or --url is required")
    if args.url:
        try:
            with urllib.request.urlopen(args.url, timeout=10) as resp:
                ctype = resp.headers.get("Content-Type", "")
                text = resp.read().decode("utf-8")
        except OSError as e:
            fail(f"scrape of {args.url} failed: {e}")
        if "openmetrics-text" not in ctype:
            fail(f"{args.url}: Content-Type {ctype!r} is not an "
                 f"OpenMetrics exposition")
    else:
        with open(args.path) as f:
            text = f.read()
    if not text.endswith("# EOF\n"):
        fail("document must terminate with '# EOF'")
    lines = text.splitlines()
    if lines.count("# EOF") != 1:
        fail("exactly one '# EOF' line expected")

    types = {}        # family -> declared type
    closed = set()    # families whose block has ended
    current = None    # family of the open block
    samples = 0
    # histogram family -> {base labels -> list of (le, cum)} / counts
    hist_buckets = {}
    hist_counts = {}

    for i, line in enumerate(lines[:-1], 1):
        if line == "# EOF":
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) != 4:
                fail(f"line {i}: malformed TYPE line: {line!r}")
            _, _, fam, typ = parts
            if typ not in ("counter", "gauge", "histogram"):
                fail(f"line {i}: unknown type {typ!r} for {fam}")
            if fam in types:
                fail(f"line {i}: family {fam} declared twice")
            if current is not None:
                closed.add(current)
            types[fam] = typ
            current = fam
            continue
        if line.startswith("#"):
            fail(f"line {i}: unknown comment line: {line!r}")

        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"line {i}: unparseable sample: {line!r}")
        name, raw_labels, raw_value = m.groups()
        fam, suffix = split_family(name, types)
        if fam is None:
            fail(f"line {i}: sample {name!r} has no TYPE declaration")
        if fam != current:
            where = "closed block" if fam in closed else "later block"
            fail(f"line {i}: sample {name!r} outside its family's "
                 f"block ({where} of {fam})")
        samples += 1
        typ = types[fam]
        labels = parse_labels(raw_labels)

        expected = {"counter": ("_total",), "gauge": ("",),
                    "histogram": ("_bucket", "_count", "_sum")}[typ]
        if suffix not in expected:
            fail(f"line {i}: {typ} family {fam} has sample suffix "
                 f"{suffix or '(none)'!r}, expected one of {expected}")

        if typ in ("counter", "histogram"):
            if raw_value == "+Inf" or "." in raw_value or \
                    "e" in raw_value.lower():
                if not (typ == "histogram" and suffix == "_sum"):
                    fail(f"line {i}: {name} value {raw_value!r} is not "
                         f"a non-negative integer")
            elif int(raw_value) < 0:
                fail(f"line {i}: {name} is negative: {raw_value}")

        if typ == "histogram" and suffix == "_bucket":
            le = dict(labels).get("le")
            if le is None:
                fail(f"line {i}: {name} bucket sample without an 'le' "
                     f"label")
            base = tuple(kv for kv in labels if kv[0] != "le")
            bound = float("inf") if le == "+Inf" else float(le)
            hist_buckets.setdefault(fam, {}).setdefault(base, []).append(
                (i, bound, int(raw_value)))
        elif typ == "histogram" and suffix == "_count":
            hist_counts.setdefault(fam, {})[labels] = (i, int(raw_value))

    for fam, by_base in hist_buckets.items():
        for base, series in by_base.items():
            prev_bound, prev_cum = -1.0, -1
            for line_no, bound, cum in series:
                if bound <= prev_bound:
                    fail(f"line {line_no}: {fam} bucket bounds not "
                         f"increasing ({bound} after {prev_bound})")
                if cum < prev_cum:
                    fail(f"line {line_no}: {fam} cumulative bucket "
                         f"count decreases ({cum} after {prev_cum})")
                prev_bound, prev_cum = bound, cum
            if series[-1][1] != float("inf"):
                fail(f"{fam}{dict(base)}: missing mandatory '+Inf' "
                     f"bucket")
            count = hist_counts.get(fam, {}).get(base)
            if count is None:
                fail(f"{fam}{dict(base)}: no '_count' sample")
            if count[1] != series[-1][2]:
                fail(f"line {count[0]}: {fam}_count {count[1]} != "
                     f"'+Inf' bucket {series[-1][2]}")

    for req in args.require:
        fam, _, typ = req.partition(":")
        if fam not in types:
            fail(f"required family {fam!r} not exported")
        if typ and types[fam] != typ:
            fail(f"required family {fam!r} is a {types[fam]}, "
                 f"expected {typ}")

    print(f"check_metrics: OK: {len(types)} families, {samples} samples"
          + (f", {len(args.require)} required present"
             if args.require else ""))


if __name__ == "__main__":
    main()
