#!/usr/bin/env python3
"""Validate a Chrome-tracing JSON file produced by NDIRECT_TRACE.

Checks what ui.perfetto.dev silently tolerates but a correct exporter
must guarantee:
  * top-level object with a "traceEvents" list,
  * every event carries name/ph/pid/tid (+ ts for non-metadata phases),
  * per tid, 'B'/'E' spans nest LIFO and end balanced,
  * per tid, timestamps are monotonically non-decreasing,
  * 'X' events have a non-negative dur,
  * 'C' counter samples carry an args object of non-negative numeric
    series; "pmu" counters name their l1d_misses/llc_misses series,
  * serving-layer spans are attributable: every 'B'/'X' event named
    serve_* carries a "req" and/or "batch" arg (non-negative integers;
    'X' request spans like serve_queue must carry both), so a request
    id printed by the server can always be found in the trace.

Usage: check_trace.py <trace.json> [--require <prefix>]...
--require fails the check unless at least one event name starts with
the prefix — CI uses `--require serve_` so a silently un-instrumented
serving path cannot pass.
Exit status 0 on a valid trace, 1 with a diagnostic otherwise.
"""
import argparse
import json
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_serve_args(i, ev):
    """serve_* 'B'/'X' spans must carry integer req/batch args."""
    args = ev.get("args")
    if not isinstance(args, dict):
        fail(f"event {i}: serve span {ev['name']!r} ({ev['ph']}) has "
             f"no args object")
    keys = set(args) & {"req", "batch"}
    if not keys:
        fail(f"event {i}: serve span {ev['name']!r} carries neither "
             f"'req' nor 'batch'")
    if ev["ph"] == "X" and keys != {"req", "batch"}:
        fail(f"event {i}: serve request span {ev['name']!r} ('X') "
             f"must carry both 'req' and 'batch', has {sorted(keys)}")
    for key in keys:
        value = args[key]
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < 0:
            fail(f"event {i}: serve span {ev['name']!r} arg {key!r} "
                 f"is not a non-negative integer: {value!r}")


def main():
    ap = argparse.ArgumentParser(
        description="Validate a Chrome-tracing JSON file")
    ap.add_argument("trace")
    ap.add_argument("--require", action="append", default=[],
                    metavar="PREFIX",
                    help="fail unless an event name has this prefix")
    opts = ap.parse_args()
    with open(opts.trace) as f:
        doc = json.load(f)

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a traceEvents list")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("traceEvents is not a list")

    open_spans = {}  # tid -> stack of open 'B' names
    last_ts = {}  # tid -> last timestamp seen
    counted = 0
    prefixes_seen = set()
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                fail(f"event {i} missing {key!r}: {ev}")
        if ph == "M":  # metadata (thread_name): no timestamp required
            continue
        if "ts" not in ev:
            fail(f"event {i} ({ev['name']!r}) missing ts")
        tid, ts = ev["tid"], float(ev["ts"])
        counted += 1
        for prefix in opts.require:
            if ev["name"].startswith(prefix):
                prefixes_seen.add(prefix)
        if ev["name"].startswith("serve_") and ph in ("B", "X"):
            check_serve_args(i, ev)
        if ts < last_ts.get(tid, 0.0):
            fail(
                f"event {i} ({ev['name']!r}) goes back in time on tid "
                f"{tid}: {ts} < {last_ts[tid]}"
            )
        last_ts[tid] = ts
        if ph == "B":
            open_spans.setdefault(tid, []).append(ev["name"])
        elif ph == "E":
            stack = open_spans.get(tid, [])
            if not stack:
                fail(f"event {i}: 'E' {ev['name']!r} with no open span "
                     f"on tid {tid}")
            if stack[-1] != ev["name"]:
                fail(
                    f"event {i}: 'E' {ev['name']!r} closes {stack[-1]!r} "
                    f"on tid {tid} (spans must nest LIFO)"
                )
            stack.pop()
        elif ph == "X":
            if float(ev.get("dur", 0)) < 0:
                fail(f"event {i} ({ev['name']!r}) has negative dur")
        elif ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                fail(
                    f"event {i}: 'C' {ev['name']!r} needs a non-empty "
                    f"args object of counter series"
                )
            for series, value in args.items():
                if not isinstance(value, (int, float)) or isinstance(
                    value, bool
                ):
                    fail(
                        f"event {i}: counter {ev['name']!r} series "
                        f"{series!r} is not numeric: {value!r}"
                    )
                if value < 0:
                    fail(
                        f"event {i}: counter {ev['name']!r} series "
                        f"{series!r} is negative: {value}"
                    )
            if ev["name"] == "pmu":
                missing = {"l1d_misses", "llc_misses"} - set(args)
                if missing:
                    fail(
                        f"event {i}: pmu counter missing series "
                        f"{sorted(missing)}"
                    )
        elif ph not in ("i", "I"):
            fail(f"event {i} has unknown phase {ph!r}")

    for tid, stack in open_spans.items():
        if stack:
            fail(f"tid {tid} ends with unclosed spans: {stack}")

    for prefix in opts.require:
        if prefix not in prefixes_seen:
            fail(f"no event named {prefix}* in the trace (--require)")

    dropped = doc.get("otherData", {}).get("dropped", 0)
    print(
        f"check_trace: OK: {counted} events on {len(last_ts)} lanes, "
        f"{dropped} dropped"
    )


if __name__ == "__main__":
    main()
